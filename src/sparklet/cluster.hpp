// cluster.hpp — description of the (simulated) cluster a sparklet context
// runs against: node shape, network, disks, and the Spark-level settings the
// paper tunes (executors, executor-cores, RDD partitions).
//
// Presets model the paper's two testbeds:
//   * cluster 1 — 16 nodes × dual 16-core Skylake (32 cores), 192 GB RAM,
//     1 TB SSD, GbE.
//   * cluster 2 — 16 nodes × dual 10-core Haswell (20 cores), 64 GB RAM,
//     7500 rpm spinning disks, GbE.
#pragma once

#include <cstddef>
#include <string>

#include "support/check.hpp"

namespace sparklet {

struct NetworkSpec {
  double bandwidth_Bps = 125.0e6;  ///< GbE ≈ 125 MB/s per link
  double latency_s = 200e-6;       ///< per-transfer setup cost
};

struct DiskSpec {
  double read_Bps = 500.0e6;
  double write_Bps = 450.0e6;
  double seek_s = 0.1e-3;
  double capacity_bytes = 1.0e12;
  std::string kind = "ssd";

  static DiskSpec ssd(double capacity_bytes = 1.0e12) {
    return DiskSpec{500.0e6, 450.0e6, 0.1e-3, capacity_bytes, "ssd"};
  }
  static DiskSpec hdd(double capacity_bytes = 1.0e12) {
    return DiskSpec{120.0e6, 110.0e6, 8e-3, capacity_bytes, "hdd"};
  }
};

struct NodeSpec {
  int physical_cores = 32;
  double mem_bytes = 192.0e9;
  double l1_bytes = 32.0 * 1024;
  double l2_bytes = 1024.0 * 1024;
  double l3_bytes = 22.0 * 1024 * 1024;
  /// Sustained per-core GEP-update throughput when the working set is cache
  /// resident (updates/second). Calibrated in simtime::MachineModel docs.
  double core_updates_per_s = 1.0e9;
};

struct ClusterConfig {
  std::string name = "local";
  int num_nodes = 1;
  NodeSpec node;
  NetworkSpec network;
  DiskSpec local_disk = DiskSpec::ssd();   ///< shuffle staging
  DiskSpec shared_fs = DiskSpec::ssd();    ///< CB's shared persistent storage
  /// Device behind the storage-level spill tier (demoted cache blocks).
  /// Virtual-time charges use these rates; the payloads are real files.
  DiskSpec spill_disk = DiskSpec::ssd();
  /// Root for spill files: one subdirectory per *physical node* (so spill
  /// files survive executor kills, like Spark's external shuffle service).
  /// Empty → a unique temp dir owned (and removed) by the SparkContext.
  std::string spill_dir;

  // --- Spark settings (paper §V-B) ---
  int executors_per_node = 1;
  int executor_cores = 32;        ///< concurrent task slots per executor
  std::size_t rdd_partitions = 0; ///< 0 → 2 × total cores (Spark guidance)
  double executor_mem_bytes = 160.0e9;

  /// Per-task scheduling overhead (driver → executor dispatch, result fetch).
  double task_overhead_s = 4e-3;
  /// Per-stage overhead (DAG scheduling, barrier).
  double stage_overhead_s = 20e-3;

  /// Physical host threads backing the executor pool (0 → auto: the virtual
  /// slot count clamped to 2 × hardware concurrency). Chaos tests pin this to
  /// prove fault injection is independent of thread-pool interleaving.
  int physical_threads = 0;

  int num_executors() const { return num_nodes * executors_per_node; }
  int total_cores() const { return num_nodes * node.physical_cores; }

  std::size_t effective_partitions() const {
    return rdd_partitions != 0
               ? rdd_partitions
               : static_cast<std::size_t>(2 * total_cores());
  }

  void validate() const {
    GS_THROW_IF(num_nodes < 1, gs::ConfigError, "need at least one node");
    GS_THROW_IF(executors_per_node < 1, gs::ConfigError,
                "need at least one executor per node");
    GS_THROW_IF(executor_cores < 1, gs::ConfigError,
                "executor_cores must be >= 1");
    GS_THROW_IF(node.physical_cores < 1, gs::ConfigError,
                "node must have cores");
  }

  // --- presets ---

  /// Paper cluster #1: 16 × (2×16-core Skylake, 192 GB, 1 TB SSD), GbE.
  static ClusterConfig skylake_cluster(int nodes = 16);

  /// Paper cluster #2: 16 × (2×10-core Haswell, 64 GB, spinning disk), GbE.
  static ClusterConfig haswell_cluster(int nodes = 16);

  /// In-process testing configuration (small and fast).
  static ClusterConfig local(int nodes = 2, int cores = 2);
};

}  // namespace sparklet
