// block_store.hpp — simulated persistent storage with tiered residency.
//
// Two roles, mirroring the paper:
//   * per-node local disks that stage shuffle data for wide transformations —
//     with a hard capacity limit, reproducing the paper's observation that IM
//     executions are "constrained by the size of the underlying SSDs";
//   * the shared filesystem the Collect-Broadcast driver distributes tiles
//     through.
// All I/O is virtual: operations return the seconds they would take and
// update the accounted usage; actual data stays in process memory.
//
// On top of the raw byte counters sits a *named block* layer used by the
// fault-tolerance machinery: cached RDD partitions and checkpoint files are
// registered as (rdd, partition) blocks with a checksum and a StorageLevel.
// Under capacity pressure a block walks the demotion ladder its level allows
//
//   deserialized ──encode──▶ serialized ──spill──▶ disk
//
// before the store ever falls back to the lossy path (LRW eviction +
// lineage recomputation). Demotions are *lossless*, so they deliberately
// bypass the eviction filter that protects the running job's lineage: a
// readback restores the exact bytes. Pinned blocks (checkpoints) never
// demote and never evict. The actual encode/restore/spill work is delegated
// to TierHooks wired by SparkContext, which keeps this layer free of any
// knowledge about RDDs, codecs, or the filesystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "sparklet/cluster.hpp"
#include "sparklet/storage_level.hpp"
#include "support/check.hpp"

namespace sparklet {

/// Identity of a cached/checkpointed partition in a BlockStore.
struct BlockId {
  int rdd = -1;
  int partition = -1;

  friend bool operator==(const BlockId& a, const BlockId& b) {
    return a.rdd == b.rdd && a.partition == b.partition;
  }
};

/// One tier transition or tier I/O, reported to the storage observer so the
/// context can charge virtual time, bump RecoveryCounters, and drop trace
/// markers. Events fire outside the store mutex.
struct StorageEvent {
  enum Kind {
    kDemoteToSer,   ///< deserialized → serialized (memory op)
    kSpillWrite,    ///< serialized → disk (payload written to spill file)
    kSpillRefused,  ///< spill write failed (ENOSPC / fs error); block stayed
    kReadbackMem,   ///< transient restore from the serialized tier
    kReadbackDisk,  ///< transient restore from a spill file
    kCorruptSpill,  ///< payload failed verification; block dropped to lineage
  };
  Kind kind = kDemoteToSer;
  BlockId id;
  int node = 0;           ///< store slot (spill node for disk events)
  std::size_t bytes = 0;  ///< payload bytes moved/affected
};

class BlockStore {
 public:
  /// Decides whether a block may be *evicted* (lossy) under pressure, e.g.
  /// the scheduler protects the running job's lineage. Lossless demotions
  /// ignore the filter. Default: everything unpinned is fair game.
  using EvictionFilter = std::function<bool(const BlockId&)>;
  /// Invoked (outside the store lock) for every block evicted by pressure.
  using EvictHook = std::function<void(const BlockId&)>;
  /// Analysis hook (outside the store lock): every named-block access, with
  /// is_write = true for put/remove/corrupt. Wired by
  /// SparkContext::set_race_detector(); unset costs one branch per access.
  using AccessObserver = std::function<void(const BlockId&, bool is_write)>;

  /// Delegates for the serialized and disk tiers. encode/restore/release and
  /// spill_write run *inside* the store mutex — they must never call back
  /// into this store. observer runs outside the mutex.
  struct TierHooks {
    /// Serialize the owner's live data for `id`; nullopt when no codec or
    /// the data is not resident (block then stays deserialized).
    std::function<std::optional<std::vector<std::uint8_t>>(const BlockId&)>
        encode;
    /// Reinstall the owner's data from a payload; false on decode failure.
    std::function<bool(const BlockId&, const std::vector<std::uint8_t>&)>
        restore;
    /// Drop only the owner's deserialized copy (the payload stays here).
    std::function<void(const BlockId&)> release;
    /// Persist a payload on a physical node; false on ENOSPC/write failure.
    std::function<bool(const BlockId&, int, const std::vector<std::uint8_t>&)>
        spill_write;
    /// Fetch + verify a spilled payload; nullopt on corrupt/torn/missing.
    std::function<std::optional<std::vector<std::uint8_t>>(const BlockId&, int)>
        spill_read;
    std::function<void(const BlockId&, int)> spill_remove;
    /// Map a store slot (executor index) to its physical spill node, so
    /// spill files survive executor kills. Identity when unset.
    std::function<int(int)> spill_node_of;
    std::function<void(const StorageEvent&)> observer;
  };

  BlockStore(DiskSpec spec, int num_nodes);

  /// Stage `bytes` on `node`'s disk. Returns virtual seconds for the write.
  /// Throws gs::CapacityError when the node's disk would overflow.
  double write(int node, std::size_t bytes);

  /// Read `bytes` from `node`'s disk (no usage change).
  double read(int node, std::size_t bytes) const;

  /// Release staged bytes (shuffle cleanup after a stage completes).
  void release(int node, std::size_t bytes);
  void clear();

  std::size_t used(int node) const;
  std::size_t peak(int node) const;
  std::size_t total_written() const;

  // ----------------------- named blocks (fault tolerance) -----------------

  /// Register (or overwrite) block `id` on `node` with storage policy
  /// `level`. Under pressure, unpinned blocks demote down `level`'s tier
  /// ladder least-recently-written first; blocks whose ladder is exhausted
  /// are evicted if the filter allows. If nothing can demote or evict,
  /// throws gs::CapacityError with a per-tier breakdown. Pinned blocks
  /// (checkpoints) never demote or evict. Returns virtual seconds.
  double put_block(int node, const BlockId& id, std::size_t bytes,
                   std::uint64_t checksum, bool pinned,
                   StorageLevel level = StorageLevel::kMemoryOnly);

  /// Outcome of readback_block.
  enum class Readback {
    kOk,       ///< owner data is (now) live
    kNoBlock,  ///< no such block — caller recomputes from lineage
    kFailed,   ///< payload corrupt/torn/missing — block dropped; recompute
  };

  /// Restore the owner's data for a demoted block. The restore is
  /// *transient*: the block keeps its tier and memory charge (the payload or
  /// spill file stays authoritative), modeling Spark's task unroll memory.
  /// A corrupt or torn payload drops the block entirely (kFailed) so the
  /// caller heals via lineage — never silent wrong data.
  Readback readback_block(const BlockId& id);

  bool has_block(const BlockId& id) const;
  /// True when the block exists and its stored checksum matches `expect`.
  bool verify_block(const BlockId& id, std::uint64_t expect) const;
  /// Chaos injection: flip the stored checksum so verification fails.
  void corrupt_block(const BlockId& id);
  void remove_block(const BlockId& id);
  void remove_rdd_blocks(int rdd);
  /// Blocks currently resident on `node`, oldest first.
  std::vector<BlockId> blocks_on(int node) const;
  std::size_t num_blocks() const;
  int evictions() const;

  /// Residency of a block, or nullopt when absent. Used by the kill path
  /// (disk-tier blocks survive executor kills) and by tests.
  std::optional<StorageTier> block_tier(const BlockId& id) const;

  /// Per-tier census of one node (bytes = memory charge for memory tiers,
  /// file bytes for the disk tier). Also powers the CapacityError message.
  struct TierUsage {
    int blocks = 0;
    std::size_t bytes = 0;
  };
  TierUsage tier_usage(int node, StorageTier tier) const;

  void set_evict_hook(EvictHook hook) { evict_hook_ = std::move(hook); }
  void set_eviction_filter(EvictionFilter f) { evict_filter_ = std::move(f); }
  void set_access_observer(AccessObserver o) { access_observer_ = std::move(o); }
  void set_tier_hooks(TierHooks hooks) { hooks_ = std::move(hooks); }

  const DiskSpec& spec() const { return spec_; }
  int num_nodes() const { return static_cast<int>(used_.size()); }

 private:
  struct BlockInfo {
    BlockId id;
    int node = 0;
    std::size_t bytes = 0;  ///< logical (deserialized) size
    std::uint64_t checksum = 0;
    bool pinned = false;
    std::uint64_t stamp = 0;  ///< write clock, for least-recently-written
    StorageLevel level = StorageLevel::kMemoryOnly;
    StorageTier tier = StorageTier::kDeserialized;
    std::vector<std::uint8_t> payload;  ///< serialized tier only
    std::size_t disk_bytes = 0;         ///< disk tier only
    int spill_node = -1;                ///< physical node of the spill file
  };

  /// Memory accounted for a block in its current tier.
  static std::size_t mem_charge(const BlockInfo& b);
  /// Refund + unregister by id; removes the spill file for disk blocks.
  void erase_block_locked(std::vector<BlockInfo>::iterator it);
  /// serialized → disk under the lock; true on success.
  bool try_spill_locked(BlockInfo& b, std::vector<StorageEvent>& events);
  /// Walk demotion/eviction until `node` fits. False when stuck.
  bool shrink_node_locked(int node, std::vector<BlockId>& evicted,
                          std::vector<StorageEvent>& events);
  gs::CapacityError capacity_error_locked(int node,
                                          std::size_t requested) const;

  DiskSpec spec_;
  mutable std::mutex mu_;
  std::vector<std::size_t> used_;
  std::vector<std::size_t> peak_;
  std::size_t total_written_ = 0;

  std::vector<BlockInfo> blocks_;
  std::uint64_t clock_ = 0;
  int evictions_ = 0;
  EvictHook evict_hook_;
  EvictionFilter evict_filter_;
  AccessObserver access_observer_;  ///< set before use, never concurrently
  TierHooks hooks_;                 ///< set before use, never concurrently
};

}  // namespace sparklet
