// block_store.hpp — simulated persistent storage.
//
// Two roles, mirroring the paper:
//   * per-node local disks that stage shuffle data for wide transformations —
//     with a hard capacity limit, reproducing the paper's observation that IM
//     executions are "constrained by the size of the underlying SSDs";
//   * the shared filesystem the Collect-Broadcast driver distributes tiles
//     through.
// All I/O is virtual: operations return the seconds they would take and
// update the accounted usage; actual data stays in process memory.
//
// On top of the raw byte counters sits a *named block* layer used by the
// fault-tolerance machinery: cached RDD partitions and checkpoint files are
// registered as (rdd, partition) blocks with a checksum. Named blocks give
// the scheduler something concrete to lose (executor kill), corrupt (chaos
// checkpoint injection), or evict under capacity pressure (LRU over unpinned
// blocks — graceful degradation instead of a hard CapacityError, since
// evicted partitions are recomputable from lineage).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "sparklet/cluster.hpp"

namespace sparklet {

/// Identity of a cached/checkpointed partition in a BlockStore.
struct BlockId {
  int rdd = -1;
  int partition = -1;

  friend bool operator==(const BlockId& a, const BlockId& b) {
    return a.rdd == b.rdd && a.partition == b.partition;
  }
};

class BlockStore {
 public:
  /// Decides whether a block may be evicted under pressure (e.g. the
  /// scheduler protects the running job's lineage). Default: everything
  /// unpinned is fair game.
  using EvictionFilter = std::function<bool(const BlockId&)>;
  /// Invoked (outside the store lock) for every block evicted by pressure.
  using EvictHook = std::function<void(const BlockId&)>;
  /// Analysis hook (outside the store lock): every named-block access, with
  /// is_write = true for put/remove/corrupt. Wired by
  /// SparkContext::set_race_detector(); unset costs one branch per access.
  using AccessObserver = std::function<void(const BlockId&, bool is_write)>;

  BlockStore(DiskSpec spec, int num_nodes);

  /// Stage `bytes` on `node`'s disk. Returns virtual seconds for the write.
  /// Throws gs::CapacityError when the node's disk would overflow.
  double write(int node, std::size_t bytes);

  /// Read `bytes` from `node`'s disk (no usage change).
  double read(int node, std::size_t bytes) const;

  /// Release staged bytes (shuffle cleanup after a stage completes).
  void release(int node, std::size_t bytes);
  void clear();

  std::size_t used(int node) const;
  std::size_t peak(int node) const;
  std::size_t total_written() const;

  // ----------------------- named blocks (fault tolerance) -----------------

  /// Register (or overwrite) block `id` on `node`. When the node would
  /// overflow, unpinned blocks passing the eviction filter are evicted
  /// least-recently-written first; if that still cannot make room, throws
  /// gs::CapacityError. Pinned blocks (checkpoints) are never evicted.
  /// Returns virtual seconds for the write.
  double put_block(int node, const BlockId& id, std::size_t bytes,
                   std::uint64_t checksum, bool pinned);

  bool has_block(const BlockId& id) const;
  /// True when the block exists and its stored checksum matches `expect`.
  bool verify_block(const BlockId& id, std::uint64_t expect) const;
  /// Chaos injection: flip the stored checksum so verification fails.
  void corrupt_block(const BlockId& id);
  void remove_block(const BlockId& id);
  void remove_rdd_blocks(int rdd);
  /// Blocks currently resident on `node`, oldest first.
  std::vector<BlockId> blocks_on(int node) const;
  std::size_t num_blocks() const;
  int evictions() const;

  void set_evict_hook(EvictHook hook) { evict_hook_ = std::move(hook); }
  void set_eviction_filter(EvictionFilter f) { evict_filter_ = std::move(f); }
  void set_access_observer(AccessObserver o) { access_observer_ = std::move(o); }

  const DiskSpec& spec() const { return spec_; }
  int num_nodes() const { return static_cast<int>(used_.size()); }

 private:
  struct BlockInfo {
    BlockId id;
    int node = 0;
    std::size_t bytes = 0;
    std::uint64_t checksum = 0;
    bool pinned = false;
    std::uint64_t stamp = 0;  ///< write clock, for least-recently-written
  };

  DiskSpec spec_;
  mutable std::mutex mu_;
  std::vector<std::size_t> used_;
  std::vector<std::size_t> peak_;
  std::size_t total_written_ = 0;

  std::vector<BlockInfo> blocks_;
  std::uint64_t clock_ = 0;
  int evictions_ = 0;
  EvictHook evict_hook_;
  EvictionFilter evict_filter_;
  AccessObserver access_observer_;  ///< set before use, never concurrently
};

}  // namespace sparklet
