// block_store.hpp — simulated persistent storage.
//
// Two roles, mirroring the paper:
//   * per-node local disks that stage shuffle data for wide transformations —
//     with a hard capacity limit, reproducing the paper's observation that IM
//     executions are "constrained by the size of the underlying SSDs";
//   * the shared filesystem the Collect-Broadcast driver distributes tiles
//     through.
// All I/O is virtual: operations return the seconds they would take and
// update the accounted usage; actual data stays in process memory.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "sparklet/cluster.hpp"

namespace sparklet {

class BlockStore {
 public:
  BlockStore(DiskSpec spec, int num_nodes);

  /// Stage `bytes` on `node`'s disk. Returns virtual seconds for the write.
  /// Throws gs::CapacityError when the node's disk would overflow.
  double write(int node, std::size_t bytes);

  /// Read `bytes` from `node`'s disk (no usage change).
  double read(int node, std::size_t bytes) const;

  /// Release staged bytes (shuffle cleanup after a stage completes).
  void release(int node, std::size_t bytes);
  void clear();

  std::size_t used(int node) const;
  std::size_t peak(int node) const;
  std::size_t total_written() const;

  const DiskSpec& spec() const { return spec_; }
  int num_nodes() const { return static_cast<int>(used_.size()); }

 private:
  DiskSpec spec_;
  mutable std::mutex mu_;
  std::vector<std::size_t> used_;
  std::vector<std::size_t> peak_;
  std::size_t total_written_ = 0;
};

}  // namespace sparklet
