// task_graph.hpp — task-level dataflow execution specs for sparklet.
//
// A task graph is a DAG of labeled tasks, each pinned to a virtual executor;
// SparkContext::run_task_graph() executes it on the thread pool with a ready
// queue (no phase barriers: a task launches the moment its last dependency
// completes) and replays the measured durations onto the virtual cluster via
// VirtualTimeline::add_dataflow(). The GEP dataflow driver
// (gepspark/dataflow.hpp) builds one graph per checkpoint segment.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sparklet/virtual_timeline.hpp"

namespace sparklet {

/// One task of a dependency graph handed to SparkContext::run_task_graph().
/// Dependencies are indices into the same vector and must precede the task
/// (deps[j] < own index), so any spec vector is a DAG by construction.
struct DataflowTaskSpec {
  std::string label;  ///< stage-style label ("ARecGE", "shuffleXfer", …)
  std::vector<int> deps;
  int executor = 0;
  TimeCategory category = TimeCategory::kCompute;
  /// Transfer tasks model data movement: virtual cost is `model_s` (not wall
  /// time) and no chaos failures / stragglers / speculation apply to them.
  bool transfer = false;
  double model_s = 0.0;

  // --- analysis metadata (optional; src/analysis/) -------------------------
  // Structured identity of the work a task performs, so the static schedule
  // checker (analysis::ScheduleChecker) and the happens-before race detector
  // can name tasks without parsing labels. Zero/-1 means "not a tile task"
  // (e.g. the random stress graphs in tests); the scheduler itself never
  // reads these fields.
  char gep_kind = 0;  ///< 'A'/'B'/'C'/'D' kernel, 'F' fence, 'X' transfer
  int gep_k = -1;     ///< GEP iteration: producing k ('A'..'D'/'F'), or the
                      ///< transferred version's producing k ('X')
  int tile_i = -1;    ///< grid row of the written (or transferred) tile
  int tile_j = -1;    ///< grid column of the written (or transferred) tile
  /// Batched task (fused D): the (tile_i, tile_j) coordinates of EVERY
  /// member tile the task writes, so per-tile audit footprints survive
  /// coalescing. Non-empty ⇒ tile_i/tile_j are -1 and the checker derives
  /// the footprint as the union over members; empty ⇒ single-tile task.
  std::vector<std::pair<int, int>> batch;
};

/// Externally controlled ready-queue pop order for run_task_graph().
///
/// When a hook is installed on the SparkContext, the graph runs serially on
/// the calling (driver) thread: at every step the scheduler presents the set
/// of ready task indices (ascending) and executes exactly the one the hook
/// picks. This makes any topological order replayable deterministically —
/// the substrate the schedule-space model checker (analysis/model_check.hpp)
/// enumerates interleavings on. Virtual-timeline replay, chaos injection,
/// and the race detector all run identically to the pooled path.
class SchedulerHook {
 public:
  virtual ~SchedulerHook() = default;
  /// A new graph is about to run; `tasks` is the full spec vector.
  virtual void begin_graph(const std::string& name,
                           const std::vector<DataflowTaskSpec>& tasks) = 0;
  /// Choose the next task to run from `ready` (nonempty, ascending indices).
  /// Must return a member of `ready`.
  virtual int pick(const std::vector<int>& ready) = 0;
  /// The graph finished (successfully or not).
  virtual void end_graph() {}
};

/// What run_task_graph() observed and scheduled.
struct TaskGraphResult {
  /// Task indices in the order they completed on the pool. Deterministic in
  /// content (every valid order is a topological order); the exact order
  /// depends on thread interleaving and is NOT part of any result value —
  /// tests use it to assert dependency-respecting execution.
  std::vector<int> completion_order;
  /// Executor each task's final (post-kill reassignment) attempt ran on.
  std::vector<int> executors;
  int kill_victim = -1;  ///< executor killed mid-graph, -1 if none
  double makespan_s = 0.0;  ///< virtual makespan of the dataflow schedule
  int tasks_run = 0;  ///< compute tasks executed (excludes transfers)
};

}  // namespace sparklet
