// metrics.hpp — execution metrics collected by the sparklet runtime.
//
// The paper's analysis hinges on stage structure, task counts, and shuffle
// volume; the drivers' tests assert on these records, and the discrete-event
// simulator is cross-validated against them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sparklet/virtual_timeline.hpp"

namespace sparklet {

struct TaskMetric {
  int stage_id = -1;
  int partition = -1;
  int executor = -1;
  double duration_s = 0.0;
  std::size_t input_records = 0;
  std::size_t output_records = 0;
  int attempt = 1;           ///< attempts consumed (retries show up here)
  bool speculative = false;  ///< speculative copy of a straggling task
  bool straggler = false;    ///< task was slowed by an injected straggler
};

/// Everything the fault-tolerance layer did to keep a job alive. Counters
/// only — the chaos suite asserts they are non-zero under injection and the
/// CLI/trace surface them for inspection.
struct RecoveryCounters {
  int task_failures = 0;        ///< injected task-attempt failures
  int task_retries = 0;         ///< same-task retries that followed
  int executor_kills = 0;       ///< executors lost mid-stage
  int tasks_rescheduled = 0;    ///< in-flight tasks moved to survivors
  int partitions_dropped = 0;   ///< cached partitions lost (kill/evict/fetch)
  int partitions_recomputed = 0;  ///< partitions regenerated via lineage
  int fetch_failures = 0;       ///< reducer-side missing shuffle input
  int stage_resubmissions = 0;  ///< parent-stage reruns after fetch failures
  int checkpoint_blocks = 0;    ///< blocks persisted by checkpoint()
  std::size_t checkpoint_bytes = 0;
  int corrupted_blocks = 0;     ///< checkpoint blocks failing verification
  int evictions = 0;            ///< blocks evicted under memory pressure
  int stragglers_injected = 0;
  int speculative_launches = 0;
  int speculative_wins = 0;     ///< speculative copy finished first
  // ---- storage-level tiers (spill / readback) ----
  int spilled_blocks = 0;       ///< serialized payloads demoted to disk
  std::size_t spilled_bytes = 0;
  int spill_readbacks = 0;      ///< demoted blocks restored (ser or disk tier)
  std::size_t spill_readback_bytes = 0;
  int corrupt_spills = 0;       ///< spill payloads failing checksum/decode
  int spill_write_failures = 0; ///< refused spill writes (ENOSPC, fs error)
};

/// Field-wise difference (a - b): the recovery work between two snapshots.
RecoveryCounters operator-(const RecoveryCounters& a,
                           const RecoveryCounters& b);

struct StageMetric {
  int stage_id = -1;
  std::string name;
  bool shuffle_input = false;       ///< stage begins with a wide dependency
  int num_tasks = 0;
  double wall_s = 0.0;              ///< real elapsed time for the stage
  std::size_t shuffle_read_bytes = 0;
  std::size_t shuffle_write_bytes = 0;
  std::size_t records_out = 0;
};

struct JobMetric {
  int job_id = -1;
  std::string name;
  double wall_s = 0.0;
  int num_stages = 0;
};

/// Thread-safe registry; one per SparkContext.
class MetricsRegistry {
 public:
  void add_task(const TaskMetric& t);
  void add_stage(const StageMetric& s);
  void add_job(const JobMetric& j);

  /// Driver-side bytes pulled by collect() actions.
  void add_collect_bytes(std::size_t bytes);
  /// Bytes pushed through broadcast variables.
  void add_broadcast_bytes(std::size_t bytes);

  std::vector<TaskMetric> tasks() const;
  std::vector<StageMetric> stages() const;
  std::vector<JobMetric> jobs() const;

  // ---- recovery accounting (fault-tolerance layer) ----
  RecoveryCounters recovery() const;
  void note_task_failure();
  void note_task_retry();
  void note_executor_kill();
  void note_tasks_rescheduled(int n);
  void note_partitions_dropped(int n);
  void note_partitions_recomputed(int n);
  void note_fetch_failure();
  void note_stage_resubmission();
  void note_checkpoint_block(std::size_t bytes);
  void note_corrupted_block();
  void note_eviction();
  void note_straggler();
  void note_speculative_launch();
  void note_speculative_win();
  void note_spill(std::size_t bytes);
  void note_spill_readback(std::size_t bytes);
  void note_corrupt_spill();
  void note_spill_write_failure();

  /// Sum of per-stage task counts — Spark's "tasks launched" notion (one
  /// task per partition of each stage's final RDD).
  int total_stage_tasks() const;

  std::size_t total_shuffle_read() const;
  std::size_t total_shuffle_write() const;
  std::size_t total_collect_bytes() const;
  std::size_t total_broadcast_bytes() const;
  int num_stages() const;
  int num_tasks() const;

  void reset();

  /// Human-readable per-stage summary (used by examples and --verbose runs).
  void print_summary(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<TaskMetric> tasks_;
  std::vector<StageMetric> stages_;
  std::vector<JobMetric> jobs_;
  std::size_t collect_bytes_ = 0;
  std::size_t broadcast_bytes_ = 0;
  RecoveryCounters recovery_;
};

/// Everything that happened between a MetricsScope's construction and the
/// delta() call: counter differences plus the matching window of the
/// virtual timeline ([record_begin, record_end) into timeline.stages()).
struct MetricsDelta {
  double virtual_begin_s = 0.0;
  double virtual_end_s = 0.0;
  double virtual_seconds = 0.0;
  int stages = 0;
  int tasks = 0;  ///< per-stage task counts (Spark's "tasks launched")
  std::size_t shuffle_read_bytes = 0;
  std::size_t shuffle_write_bytes = 0;
  std::size_t collect_bytes = 0;
  std::size_t broadcast_bytes = 0;
  std::size_t record_begin = 0;
  std::size_t record_end = 0;
  RecoveryCounters recovery;
};

/// Scoped capture over a MetricsRegistry + VirtualTimeline pair. Replaces
/// the snapshot-five-counters-and-diff-by-hand idiom: construct before the
/// work, call delta() after (any number of times — the scope is a window
/// start, not a one-shot).
class MetricsScope {
 public:
  MetricsScope(const MetricsRegistry& metrics, const VirtualTimeline& timeline);
  MetricsDelta delta() const;

 private:
  const MetricsRegistry& metrics_;
  const VirtualTimeline& timeline_;
  double virtual0_ = 0.0;
  int stages0_ = 0;
  int stage_tasks0_ = 0;
  std::size_t shuffle_read0_ = 0;
  std::size_t shuffle_write0_ = 0;
  std::size_t collect0_ = 0;
  std::size_t broadcast0_ = 0;
  std::size_t record0_ = 0;
  RecoveryCounters recovery0_;
};

}  // namespace sparklet
