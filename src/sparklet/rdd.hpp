// rdd.hpp — typed, lazily-evaluated RDDs with Spark's transformation algebra.
//
// Supported (the subset the paper's Listings 1 & 2 rely on, plus the usual
// conveniences): map, flatMap, filter, mapPartitions, mapValues, union,
// partitionBy, groupByKey, combineByKey, reduceByKey, keys, values; actions
// collect, count, reduce, first, take; plus checkpoint() to truncate lineage
// in iterative jobs (the drivers call it once per outer iteration, exactly
// where Spark programs checkpoint or the lineage would grow with r).
//
// Semantics preserved from Spark that the paper's analysis depends on:
//   * wide vs narrow dependencies — partitionBy/groupByKey/combineByKey
//     shuffle unless the input is already partitioned equivalently
//     (paper footnote 1); union and map drop the partitioner, filter and
//     mapValues keep it;
//   * one task per partition, stages cut at wide dependencies;
//   * shuffle volume accounting through local-disk staging with capacity
//     limits (the paper's SSD-overflow failure mode).
#pragma once

#include <algorithm>
#include <atomic>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sparklet/context.hpp"
#include "sparklet/item_bytes.hpp"
#include "sparklet/item_codec.hpp"
#include "sparklet/rdd_base.hpp"
#include "support/format.hpp"

namespace sparklet {

namespace detail {

template <typename T>
struct is_pair : std::false_type {};
template <typename A, typename B>
struct is_pair<std::pair<A, B>> : std::true_type {};

template <typename T>
std::size_t bytes_of(const T& x) {
  using sparklet::item_bytes;
  return item_bytes(x);  // unqualified: ADL finds user overloads
}

/// Hash functor bridging key types to sparklet::key_hash / ADL overloads.
template <typename K>
struct KeyHashF {
  std::size_t operator()(const K& k) const {
    using sparklet::key_hash;
    return static_cast<std::size_t>(key_hash(k));
  }
};

template <typename K>
std::uint64_t hash_key(const K& k) {
  using sparklet::key_hash;
  return key_hash(k);
}

}  // namespace detail

template <typename T>
class RDD;

template <typename T>
RDD<T> union_all(std::vector<RDD<T>> rdds, std::string label = "unionAll");

/// Concrete lineage node holding (once materialized) the partitioned data.
template <typename T>
class TypedRdd final : public RddBase {
 public:
  using ComputeFn = std::function<std::vector<T>(int)>;
  using BulkFn = std::function<void(TypedRdd<T>&)>;

  /// Narrow node: partition p is computed independently by `compute(p)`.
  static std::shared_ptr<TypedRdd> make_narrow(
      SparkContext* ctx, std::string label, int num_partitions,
      std::vector<std::shared_ptr<RddBase>> parents, PartitionerPtr part,
      ComputeFn compute) {
    auto n = std::shared_ptr<TypedRdd>(
        new TypedRdd(ctx, std::move(label), num_partitions, /*wide=*/false,
                     std::move(parents), std::move(part)));
    n->compute_ = std::move(compute);
    return n;
  }

  /// Wide node: `bulk` computes all partitions at once (shuffles).
  static std::shared_ptr<TypedRdd> make_wide(
      SparkContext* ctx, std::string label, int num_partitions,
      std::vector<std::shared_ptr<RddBase>> parents, PartitionerPtr part,
      BulkFn bulk) {
    auto n = std::shared_ptr<TypedRdd>(
        new TypedRdd(ctx, std::move(label), num_partitions, /*wide=*/true,
                     std::move(parents), std::move(part)));
    n->bulk_ = std::move(bulk);
    return n;
  }

  const std::vector<T>& partition(int p) const {
    GS_CHECK_MSG(materialized(), "partition() on unmaterialized RDD " + label());
    if (!avail_acquire(p)) {
      // Maybe only demoted (serialized/disk tier), not lost: a readback
      // restores the exact bytes from the payload or spill file.
      if (!ctx_->try_block_readback({id(), p}) || !avail_acquire(p)) {
        // The cached data is gone (executor kill, eviction, injected fetch
        // failure). The scheduler catches this and regenerates via lineage.
        throw gs::FetchFailedError(gs::strfmt(
            "partition %d of RDD %d (%s) is lost", p, id(), label().c_str()));
      }
    }
    return parts_[static_cast<std::size_t>(p)];
  }

  std::vector<T>& partition_mutable(int p) {
    return parts_[static_cast<std::size_t>(p)];
  }

  void do_materialize() override {
    parts_.assign(static_cast<std::size_t>(num_partitions()), {});
    available_.assign(static_cast<std::size_t>(num_partitions()), 0);
    if (bulk_) {
      bulk_(*this);
    } else {
      GS_CHECK_MSG(static_cast<bool>(compute_), "node has no compute function");
      ctx_->run_node_tasks(
          *this, [this](int p) {
            parts_[static_cast<std::size_t>(p)] = compute_(p);
          });
    }
    bytes_.resize(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
      bytes_[p] = range_bytes(parts_[p]);
    }
    available_.assign(parts_.size(), 1);
    mark_materialized();
    // NOTE: compute_/bulk_ are retained — they are this node's lineage, the
    // only way to regenerate lost partitions. checkpoint() releases them.
  }

  std::size_t partition_bytes(int p) const override {
    GS_CHECK(materialized());
    return bytes_[static_cast<std::size_t>(p)];
  }

  std::size_t partition_items(int p) const override {
    return parts_[static_cast<std::size_t>(p)].size();
  }

  void unpersist() override {
    const std::size_t n = parts_.size();
    parts_.assign(n, {});
    bytes_.assign(n, 0);
    available_.assign(n, 0);
  }

  bool partition_available(int p) const override {
    return materialized() && available_[static_cast<std::size_t>(p)] != 0;
  }

  void drop_partition(int p) override {
    if (!materialized() || !available_[static_cast<std::size_t>(p)]) return;
    std::vector<T>().swap(parts_[static_cast<std::size_t>(p)]);
    available_[static_cast<std::size_t>(p)] = 0;
  }

  bool recomputable() const override {
    return static_cast<bool>(compute_) || static_cast<bool>(bulk_);
  }

  int recompute_missing() override {
    if (!materialized()) return 0;
    std::vector<int> missing;
    for (int p = 0; p < num_partitions(); ++p) {
      if (avail_acquire(p)) continue;
      // Readback first: a demoted block restores losslessly from its payload
      // or spill file. Only genuinely lost (or corrupt-spill) partitions
      // fall through to lineage recomputation.
      if (ctx_->try_block_readback({id(), p}) && avail_acquire(p)) continue;
      missing.push_back(p);
    }
    if (missing.empty()) return 0;
    GS_THROW_IF(!recomputable(), gs::JobAbortedError,
                gs::strfmt("%zu partition(s) of RDD %d (%s) lost beyond the "
                           "lineage horizon — checkpointed data is gone",
                           missing.size(), id(), label().c_str()));
    if (bulk_) {
      // A wide node's partitions are coupled through the shuffle: resubmit
      // the whole map/reduce pass (Spark regenerates the map outputs, which
      // means rerunning the parent-stage tasks).
      parts_.assign(static_cast<std::size_t>(num_partitions()), {});
      available_.assign(static_cast<std::size_t>(num_partitions()), 0);
      bulk_(*this);
      for (std::size_t p = 0; p < parts_.size(); ++p) {
        bytes_[p] = range_bytes(parts_[p]);
      }
      available_.assign(parts_.size(), 1);
      return num_partitions();
    }
    ctx_->run_recovery_tasks(*this, missing, [this](int p) {
      parts_[static_cast<std::size_t>(p)] = compute_(p);
    });
    for (int p : missing) {
      bytes_[static_cast<std::size_t>(p)] =
          range_bytes(parts_[static_cast<std::size_t>(p)]);
      available_[static_cast<std::size_t>(p)] = 1;
    }
    return static_cast<int>(missing.size());
  }

  std::uint64_t partition_checksum(int p) const override {
    // Structural fingerprint (identity + shape). The simulation never
    // scrambles payload bytes, so corruption is injected by flipping the
    // *stored* checksum; content hashing is not required for detection.
    std::uint64_t s = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t field :
         {static_cast<std::uint64_t>(id()), static_cast<std::uint64_t>(p),
          static_cast<std::uint64_t>(parts_[static_cast<std::size_t>(p)].size()),
          static_cast<std::uint64_t>(bytes_[static_cast<std::size_t>(p)])}) {
      std::uint64_t st = s ^ field;
      s = gs::splitmix64(st);
    }
    return s;
  }

  /// Cut lineage: once this node is checkpointed its ancestors are no longer
  /// needed; dropping them (and the compute closures that captured them)
  /// releases their cached partitions.
  void truncate_lineage() {
    GS_CHECK_MSG(materialized(), "checkpoint before materialization");
    mutable_parents().clear();
    compute_ = nullptr;
    bulk_ = nullptr;
  }

  // ------------- storage-level tier delegates (see rdd_base.hpp) -------------

  std::optional<std::vector<std::uint8_t>> encode_partition(
      int p) const override {
    if constexpr (has_item_codec_v<T>) {
      if (!materialized() || !avail_acquire(p)) return std::nullopt;
      ByteBuffer raw;
      encode_item(raw, parts_[static_cast<std::size_t>(p)]);
      return pack_payload(std::move(raw));
    } else {
      (void)p;
      return std::nullopt;  // no codec: block stays deserialized
    }
  }

  bool restore_partition(int p,
                         const std::vector<std::uint8_t>& payload) override {
    if constexpr (has_item_codec_v<T>) {
      if (!materialized()) return false;
      // Idempotent: a concurrent reader may have triggered the same readback
      // (serialized by the context's readback_mu_); never clobber live data.
      if (avail_acquire(p)) return true;
      auto raw = unpack_payload(payload);
      if (!raw) return false;
      DecodeCursor cur{raw->data(), raw->data() + raw->size()};
      std::vector<T> items;
      if (!decode_item(cur, items) || cur.remaining() != 0) return false;
      parts_[static_cast<std::size_t>(p)] = std::move(items);
      set_avail_release(p);
      return true;
    } else {
      (void)p;
      (void)payload;
      return false;
    }
  }

 private:
  TypedRdd(SparkContext* ctx, std::string label, int num_partitions, bool wide,
           std::vector<std::shared_ptr<RddBase>> parents, PartitionerPtr part)
      : RddBase(ctx, std::move(label), num_partitions, wide, std::move(parents),
                std::move(part)) {}

  // available_ is read by task threads (partition()) and written by readback
  // restores on other task threads; the flag is the release/acquire handshake
  // that also publishes parts_[p]. std::atomic_ref<const char> is ill-formed,
  // hence the const_cast on the const reader.
  bool avail_acquire(int p) const {
    return std::atomic_ref<char>(
               const_cast<char&>(available_[static_cast<std::size_t>(p)]))
               .load(std::memory_order_acquire) != 0;
  }
  void set_avail_release(int p) {
    std::atomic_ref<char>(available_[static_cast<std::size_t>(p)])
        .store(1, std::memory_order_release);
  }

  ComputeFn compute_;
  BulkFn bulk_;
  std::vector<std::vector<T>> parts_;
  std::vector<std::size_t> bytes_;
  std::vector<char> available_;  ///< per-partition cached-data residency
};

/// Value-semantics handle to a lineage node; the user-facing API.
template <typename T>
class RDD {
 public:
  RDD() = default;
  explicit RDD(std::shared_ptr<TypedRdd<T>> node) : node_(std::move(node)) {}

  bool valid() const { return node_ != nullptr; }
  int num_partitions() const { return node_->num_partitions(); }
  const std::shared_ptr<TypedRdd<T>>& node() const { return node_; }
  SparkContext& context() const { return *node_->context(); }
  PartitionerPtr partitioner() const { return node_->partitioner(); }

  // ---------------- narrow transformations ----------------

  template <typename F>
  auto map(F f, std::string label = "map") const {
    using U = std::decay_t<std::invoke_result_t<F, const T&>>;
    auto parent = node_;
    return RDD<U>(TypedRdd<U>::make_narrow(
        parent->context(), std::move(label), parent->num_partitions(),
        {parent}, nullptr, [parent, f](int p) {
          const auto& in = parent->partition(p);
          std::vector<U> out;
          out.reserve(in.size());
          for (const auto& x : in) out.push_back(f(x));
          return out;
        }));
  }

  template <typename F>
  auto flat_map(F f, std::string label = "flatMap") const {
    using Vec = std::decay_t<std::invoke_result_t<F, const T&>>;
    using U = typename Vec::value_type;
    auto parent = node_;
    return RDD<U>(TypedRdd<U>::make_narrow(
        parent->context(), std::move(label), parent->num_partitions(),
        {parent}, nullptr, [parent, f](int p) {
          std::vector<U> out;
          for (const auto& x : parent->partition(p)) {
            Vec items = f(x);
            for (auto& item : items) out.push_back(std::move(item));
          }
          return out;
        }));
  }

  template <typename Pred>
  RDD<T> filter(Pred pred, std::string label = "filter") const {
    auto parent = node_;
    return RDD<T>(TypedRdd<T>::make_narrow(
        parent->context(), std::move(label), parent->num_partitions(),
        {parent}, parent->partitioner(), [parent, pred](int p) {
          std::vector<T> out;
          for (const auto& x : parent->partition(p)) {
            if (pred(x)) out.push_back(x);
          }
          return out;
        }));
  }

  /// F: (int partition, const std::vector<T>&) -> std::vector<U>.
  /// `preserves_partitioning` mirrors pySpark's flag: set it when f keeps
  /// every element's key unchanged, so downstream partitionBy can be elided.
  template <typename F>
  auto map_partitions(F f, bool preserves_partitioning = false,
                      std::string label = "mapPartitions") const {
    using Vec = std::decay_t<std::invoke_result_t<F, int, const std::vector<T>&>>;
    using U = typename Vec::value_type;
    auto parent = node_;
    return RDD<U>(TypedRdd<U>::make_narrow(
        parent->context(), std::move(label), parent->num_partitions(),
        {parent}, preserves_partitioning ? parent->partitioner() : nullptr,
        [parent, f](int p) { return f(p, parent->partition(p)); }));
  }

  /// Like pySpark's union: when both inputs share an equivalent partitioner
  /// (and partition count), the result merges partitions pairwise and keeps
  /// the partitioner; otherwise partition lists concatenate and the
  /// partitioner is dropped.
  RDD<T> union_with(const RDD<T>& other, std::string label = "union") const {
    return union_all<T>({*this, other}, std::move(label));
  }

  // ---------------- pair-RDD transformations ----------------
  // Enabled when T = std::pair<K, V>.

  template <typename P = T, typename = std::enable_if_t<detail::is_pair<P>::value>>
  auto keys(std::string label = "keys") const {
    return map([](const T& kv) { return kv.first; }, std::move(label));
  }

  template <typename P = T, typename = std::enable_if_t<detail::is_pair<P>::value>>
  auto values(std::string label = "values") const {
    return map([](const T& kv) { return kv.second; }, std::move(label));
  }

  /// mapValues preserves the partitioner (key space unchanged).
  template <typename F, typename P = T,
            typename = std::enable_if_t<detail::is_pair<P>::value>>
  auto map_values(F f, std::string label = "mapValues") const {
    using K = typename T::first_type;
    using V = typename T::second_type;
    using U = std::decay_t<std::invoke_result_t<F, const V&>>;
    auto parent = node_;
    return RDD<std::pair<K, U>>(TypedRdd<std::pair<K, U>>::make_narrow(
        parent->context(), std::move(label), parent->num_partitions(),
        {parent}, parent->partitioner(), [parent, f](int p) {
          std::vector<std::pair<K, U>> out;
          out.reserve(parent->partition(p).size());
          for (const auto& [k, v] : parent->partition(p)) {
            out.emplace_back(k, f(v));
          }
          return out;
        }));
  }

  /// partitionBy: redistribution by key. Elided (narrow identity) when the
  /// input already uses an equivalent partitioner — paper footnote 1.
  template <typename P = T, typename = std::enable_if_t<detail::is_pair<P>::value>>
  RDD<T> partition_by(PartitionerPtr part, std::string label = "partitionBy") const {
    using K = typename T::first_type;
    auto parent = node_;
    SparkContext* ctx = parent->context();
    GS_CHECK(part != nullptr);

    if (parent->partitioner() != nullptr &&
        parent->partitioner()->equivalent_to(*part)) {
      // Already partitioned this way: narrow pass-through.
      return RDD<T>(TypedRdd<T>::make_narrow(
          ctx, label + "(elided)", parent->num_partitions(), {parent}, part,
          [parent](int p) { return parent->partition(p); }));
    }

    const int np = part->num_partitions();
    return RDD<T>(TypedRdd<T>::make_wide(
        ctx, std::move(label), np, {parent}, part,
        [parent, part](TypedRdd<T>& self) {
          SparkContext* c = self.context();
          const int m = parent->num_partitions();
          const int np2 = part->num_partitions();
          // Map side: bucket every item by target partition.
          std::vector<std::vector<std::vector<T>>> buckets(
              static_cast<std::size_t>(m));
          std::atomic<std::size_t> moved{0};
          gs::parallel_for(c->pool(), static_cast<std::size_t>(m),
                           [&](std::size_t mp) {
                             auto& bucket = buckets[mp];
                             bucket.resize(static_cast<std::size_t>(np2));
                             std::size_t local = 0;
                             for (const auto& kv :
                                  parent->partition(static_cast<int>(mp))) {
                               const int tp = part->partition_of(
                                   detail::hash_key<K>(kv.first));
                               local += detail::bytes_of(kv);
                               bucket[static_cast<std::size_t>(tp)].push_back(kv);
                             }
                             moved += local;
                           });
          c->note_shuffle(moved.load(), moved.load());
          c->charge_shuffle(moved.load());
          // Reduce side: concatenate buckets in map order (deterministic).
          c->run_node_tasks(self, [&](int p) {
            auto& out = self.partition_mutable(p);
            for (int mp = 0; mp < m; ++mp) {
              const auto& b =
                  buckets[static_cast<std::size_t>(mp)][static_cast<std::size_t>(p)];
              out.insert(out.end(), b.begin(), b.end());
            }
          });
        }));
  }

  /// combineByKey: the paper's IM fan-in. Map-side combining (Spark default),
  /// then shuffle, then merge_combiners on the reduce side. Output order is
  /// deterministic (first-seen key order per partition).
  template <typename Create, typename MergeV, typename MergeC, typename P = T,
            typename = std::enable_if_t<detail::is_pair<P>::value>>
  auto combine_by_key(Create create, MergeV merge_v, MergeC merge_c,
                      PartitionerPtr part = nullptr,
                      std::string label = "combineByKey") const {
    using K = typename T::first_type;
    using V = typename T::second_type;
    using C = std::decay_t<std::invoke_result_t<Create, const V&>>;
    using Out = std::pair<K, C>;

    auto parent = node_;
    SparkContext* ctx = parent->context();
    if (part == nullptr) part = ctx->default_partitioner();

    const bool copartitioned = parent->partitioner() != nullptr &&
                               parent->partitioner()->equivalent_to(*part) &&
                               parent->num_partitions() == part->num_partitions();
    const int np = part->num_partitions();

    if (copartitioned) {
      // Footnote 1: input already partitioned this way — no shuffle, no
      // stage break; combine locally within each partition.
      return RDD<Out>(TypedRdd<Out>::make_narrow(
          ctx, label + "(local)", np, {parent}, part,
          [parent, create, merge_v](int p) {
            std::unordered_map<K, C, detail::KeyHashF<K>> acc;
            std::vector<K> order;
            for (const auto& [k, v] : parent->partition(p)) {
              auto it = acc.find(k);
              if (it == acc.end()) {
                acc.emplace(k, create(v));
                order.push_back(k);
              } else {
                it->second = merge_v(std::move(it->second), v);
              }
            }
            std::vector<Out> out;
            out.reserve(order.size());
            for (const K& k : order) out.emplace_back(k, std::move(acc.at(k)));
            return out;
          }));
    }

    return RDD<Out>(TypedRdd<Out>::make_wide(
        ctx, std::move(label), np, {parent}, part,
        [parent, part, create, merge_v, merge_c](TypedRdd<Out>& self) {
          SparkContext* c = self.context();
          const int m = parent->num_partitions();
          const int np2 = part->num_partitions();

          // Map side: combine locally, bucket by target partition.
          std::vector<std::vector<std::vector<Out>>> buckets(
              static_cast<std::size_t>(m));
          std::atomic<std::size_t> moved{0};
          gs::parallel_for(
              c->pool(), static_cast<std::size_t>(m), [&](std::size_t mp) {
                std::unordered_map<K, C, detail::KeyHashF<K>> acc;
                std::vector<K> order;
                for (const auto& [k, v] : parent->partition(static_cast<int>(mp))) {
                  auto it = acc.find(k);
                  if (it == acc.end()) {
                    acc.emplace(k, create(v));
                    order.push_back(k);
                  } else {
                    it->second = merge_v(std::move(it->second), v);
                  }
                }
                auto& bucket = buckets[mp];
                bucket.resize(static_cast<std::size_t>(np2));
                std::size_t local = 0;
                for (const K& k : order) {
                  const int tp = part->partition_of(detail::hash_key<K>(k));
                  local += detail::bytes_of(k) + detail::bytes_of(acc.at(k));
                  bucket[static_cast<std::size_t>(tp)].emplace_back(
                      k, std::move(acc.at(k)));
                }
                moved += local;
              });

          c->note_shuffle(moved.load(), moved.load());
          c->charge_shuffle(moved.load());

          c->run_node_tasks(self, [&](int p) {
            std::unordered_map<K, C, detail::KeyHashF<K>> acc;
            std::vector<K> order;
            for (int mp = 0; mp < m; ++mp) {
              auto& b = buckets[static_cast<std::size_t>(mp)]
                               [static_cast<std::size_t>(p)];
              for (auto& [k, cval] : b) {
                auto it = acc.find(k);
                if (it == acc.end()) {
                  acc.emplace(k, std::move(cval));
                  order.push_back(k);
                } else {
                  it->second = merge_c(std::move(it->second), std::move(cval));
                }
              }
            }
            auto& out = self.partition_mutable(p);
            out.reserve(order.size());
            for (const K& k : order) {
              out.emplace_back(k, std::move(acc.at(k)));
            }
          });
        }));
  }

  /// groupByKey: combineByKey specialization collecting values in arrival
  /// order.
  template <typename P = T, typename = std::enable_if_t<detail::is_pair<P>::value>>
  auto group_by_key(PartitionerPtr part = nullptr,
                    std::string label = "groupByKey") const {
    using V = typename T::second_type;
    return combine_by_key(
        [](const V& v) { return std::vector<V>{v}; },
        [](std::vector<V> acc, const V& v) {
          acc.push_back(v);
          return acc;
        },
        [](std::vector<V> a, std::vector<V> b) {
          a.insert(a.end(), std::make_move_iterator(b.begin()),
                   std::make_move_iterator(b.end()));
          return a;
        },
        std::move(part), std::move(label));
  }

  template <typename F, typename P = T,
            typename = std::enable_if_t<detail::is_pair<P>::value>>
  auto reduce_by_key(F f, PartitionerPtr part = nullptr,
                     std::string label = "reduceByKey") const {
    using V = typename T::second_type;
    return combine_by_key(
        [](const V& v) { return v; },
        [f](V acc, const V& v) { return f(acc, v); },
        [f](V a, V b) { return f(a, b); }, std::move(part), std::move(label));
  }

  // ---------------- actions ----------------

  std::vector<T> collect(const std::string& action = "collect") const {
    obs::ScopedSpan action_span(&context().tracer(), obs::SpanLevel::kAction,
                                action);
    context().run_job(node_, action);
    std::vector<T> out;
    std::size_t bytes = 0;
    for (int p = 0; p < node_->num_partitions(); ++p) {
      const auto& part = node_->partition(p);
      out.insert(out.end(), part.begin(), part.end());
      bytes += node_->partition_bytes(p);
    }
    context().charge_collect(bytes);
    return out;
  }

  std::size_t count() const {
    obs::ScopedSpan action_span(&context().tracer(), obs::SpanLevel::kAction,
                                "count");
    context().run_job(node_, "count");
    std::size_t n = 0;
    for (int p = 0; p < node_->num_partitions(); ++p) {
      n += node_->partition_items(p);
    }
    return n;
  }

  template <typename F>
  T reduce(F f) const {
    obs::ScopedSpan action_span(&context().tracer(), obs::SpanLevel::kAction,
                                "reduce");
    context().run_job(node_, "reduce");
    bool seen = false;
    T acc{};
    for (int p = 0; p < node_->num_partitions(); ++p) {
      for (const auto& x : node_->partition(p)) {
        acc = seen ? f(std::move(acc), x) : x;
        seen = true;
      }
    }
    GS_CHECK_MSG(seen, "reduce() on empty RDD");
    return acc;
  }

  T first() const {
    auto taken = take(1);
    GS_CHECK_MSG(!taken.empty(), "first() on empty RDD");
    return taken.front();
  }

  std::vector<T> take(std::size_t n) const {
    obs::ScopedSpan action_span(&context().tracer(), obs::SpanLevel::kAction,
                                "take");
    context().run_job(node_, "take");
    std::vector<T> out;
    for (int p = 0; p < node_->num_partitions() && out.size() < n; ++p) {
      for (const auto& x : node_->partition(p)) {
        out.push_back(x);
        if (out.size() == n) break;
      }
    }
    return out;
  }

  /// Force materialization without moving data to the driver.
  const RDD& cache() const {
    obs::ScopedSpan action_span(&context().tracer(), obs::SpanLevel::kAction,
                                "cache");
    context().run_job(node_, "cache");
    return *this;
  }

  /// Spark's persist(level): cache() with an explicit storage level. Under
  /// memory pressure the cached blocks demote down the level's tier ladder
  /// (serialize in place, spill to disk) instead of being dropped outright.
  const RDD& persist(StorageLevel level) const {
    node_->set_storage_level(level);
    return cache();
  }

  /// Materialize, persist all partitions into the shared block store with
  /// per-block checksums (a corrupted block is recomputed from lineage), then
  /// cut lineage so ancestors can be freed — the standard move in iterative
  /// Spark jobs (paper's drivers run r outer iterations). Checkpointed data
  /// survives executor loss and is never evicted.
  const RDD& checkpoint() const {
    obs::ScopedSpan action_span(&context().tracer(), obs::SpanLevel::kAction,
                                "checkpoint");
    context().run_job(node_, "checkpoint");
    context().checkpoint_node(*node_);
    node_->truncate_lineage();
    return *this;
  }

 private:
  template <typename U>
  friend class RDD;

  std::shared_ptr<TypedRdd<T>> node_;
};

// ---------------- construction ----------------

/// Distribute `data` over `num_partitions` contiguous slices
/// (0 → cluster default).
template <typename T>
RDD<T> parallelize(SparkContext& sc, std::vector<T> data,
                   int num_partitions = 0, std::string label = "parallelize") {
  if (num_partitions <= 0) {
    num_partitions = static_cast<int>(sc.config().effective_partitions());
  }
  auto shared = std::make_shared<std::vector<T>>(std::move(data));
  const int np = num_partitions;
  return RDD<T>(TypedRdd<T>::make_narrow(
      &sc, std::move(label), np, {}, nullptr, [shared, np](int p) {
        const std::size_t n = shared->size();
        const std::size_t lo = n * static_cast<std::size_t>(p) /
                               static_cast<std::size_t>(np);
        const std::size_t hi = n * (static_cast<std::size_t>(p) + 1) /
                               static_cast<std::size_t>(np);
        return std::vector<T>(shared->begin() + static_cast<std::ptrdiff_t>(lo),
                              shared->begin() + static_cast<std::ptrdiff_t>(hi));
      }));
}

/// Distribute key–value pairs by `part` (defaults to the cluster's hash
/// partitioner). The resulting RDD knows its partitioner.
template <typename K, typename V>
RDD<std::pair<K, V>> parallelize_pairs(SparkContext& sc,
                                       std::vector<std::pair<K, V>> data,
                                       PartitionerPtr part = nullptr,
                                       std::string label = "parallelizePairs") {
  if (part == nullptr) part = sc.default_partitioner();
  auto shared =
      std::make_shared<std::vector<std::pair<K, V>>>(std::move(data));
  return RDD<std::pair<K, V>>(TypedRdd<std::pair<K, V>>::make_narrow(
      &sc, std::move(label), part->num_partitions(), {}, part,
      [shared, part](int p) {
        std::vector<std::pair<K, V>> out;
        for (const auto& kv : *shared) {
          if (part->partition_of(detail::hash_key<K>(kv.first)) == p) {
            out.push_back(kv);
          }
        }
        return out;
      }));
}

/// N-ary union (sc.union in pySpark). Partitioner-aware: when every input
/// shares an equivalent partitioner and partition count, partitions merge
/// pairwise and the partitioner survives (so a following
/// partitionBy/combineByKey is elided); otherwise partition lists
/// concatenate and the partitioner is dropped.
template <typename T>
RDD<T> union_all(std::vector<RDD<T>> rdds, std::string label) {
  GS_CHECK_MSG(!rdds.empty(), "union_all of zero RDDs");
  if (rdds.size() == 1) return rdds.front();
  std::vector<std::shared_ptr<RddBase>> parents;
  std::vector<std::shared_ptr<TypedRdd<T>>> nodes;
  int total = 0;
  for (const auto& r : rdds) {
    nodes.push_back(r.node());
    parents.push_back(r.node());
    total += r.num_partitions();
  }
  SparkContext* ctx = nodes.front()->context();

  const PartitionerPtr& first_part = nodes.front()->partitioner();
  bool aware = first_part != nullptr;
  for (const auto& n : nodes) {
    aware = aware && n->partitioner() != nullptr &&
            n->partitioner()->equivalent_to(*first_part) &&
            n->num_partitions() == nodes.front()->num_partitions();
  }

  if (aware) {
    return RDD<T>(TypedRdd<T>::make_narrow(
        ctx, label + "(aware)", nodes.front()->num_partitions(), std::move(parents),
        first_part, [nodes](int p) {
          std::vector<T> out;
          for (const auto& n : nodes) {
            const auto& part = n->partition(p);
            out.insert(out.end(), part.begin(), part.end());
          }
          return out;
        }));
  }

  return RDD<T>(TypedRdd<T>::make_narrow(
      ctx, std::move(label), total, std::move(parents), nullptr,
      [nodes](int p) {
        for (const auto& n : nodes) {
          if (p < n->num_partitions()) return n->partition(p);
          p -= n->num_partitions();
        }
        GS_CHECK_MSG(false, "partition index out of range in union");
        return std::vector<T>{};
      }));
}

}  // namespace sparklet
