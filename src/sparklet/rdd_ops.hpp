// rdd_ops.hpp — the rest of Spark's everyday transformation algebra, built
// on the rdd.hpp core: join/cogroup (wide), distinct, sortBy, sample,
// zipWithIndex, aggregate/fold. Everything composes with the same stage
// planner, shuffle accounting, partitioner-elision, and fault-retry rules
// as the core operations.
#pragma once

#include <algorithm>
#include <tuple>

#include "sparklet/rdd.hpp"
#include "support/rng.hpp"

namespace sparklet {

/// cogroup: for every key present in either input, the pair of value lists.
/// Wide unless both inputs are co-partitioned with `part`.
template <typename K, typename V, typename W>
RDD<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> cogroup(
    const RDD<std::pair<K, V>>& left, const RDD<std::pair<K, W>>& right,
    PartitionerPtr part = nullptr, std::string label = "cogroup") {
  using L = std::pair<K, std::vector<V>>;
  using R = std::pair<K, std::vector<W>>;
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;

  if (part == nullptr) part = left.context().default_partitioner();
  // Group each side by key under the shared partitioner, then stitch the
  // co-located partitions together with a narrow zip.
  auto lg = left.group_by_key(part, label + ".left");
  auto rg = right.group_by_key(part, label + ".right");
  auto lnode = lg.node();
  auto rnode = rg.node();

  return RDD<Out>(TypedRdd<Out>::make_narrow(
      &left.context(), std::move(label), part->num_partitions(),
      {lnode, rnode}, part, [lnode, rnode](int p) {
        std::unordered_map<K, std::pair<std::vector<V>, std::vector<W>>,
                           detail::KeyHashF<K>>
            acc;
        std::vector<K> order;
        for (const L& kv : lnode->partition(p)) {
          auto [it, fresh] = acc.try_emplace(kv.first);
          if (fresh) order.push_back(kv.first);
          it->second.first = kv.second;
        }
        for (const R& kv : rnode->partition(p)) {
          auto [it, fresh] = acc.try_emplace(kv.first);
          if (fresh) order.push_back(kv.first);
          it->second.second = kv.second;
        }
        std::vector<Out> out;
        out.reserve(order.size());
        for (const K& k : order) out.emplace_back(k, std::move(acc.at(k)));
        return out;
      }));
}

/// Inner join: one output pair per matching (v, w) combination.
template <typename K, typename V, typename W>
RDD<std::pair<K, std::pair<V, W>>> join(const RDD<std::pair<K, V>>& left,
                                        const RDD<std::pair<K, W>>& right,
                                        PartitionerPtr part = nullptr,
                                        std::string label = "join") {
  using Out = std::pair<K, std::pair<V, W>>;
  return cogroup(left, right, std::move(part), label + ".cogroup")
      .flat_map(
          [](const std::pair<K, std::pair<std::vector<V>, std::vector<W>>>&
                 kv) {
            std::vector<Out> out;
            out.reserve(kv.second.first.size() * kv.second.second.size());
            for (const V& v : kv.second.first) {
              for (const W& w : kv.second.second) {
                out.push_back({kv.first, {v, w}});
              }
            }
            return out;
          },
          std::move(label));
}

/// distinct: deduplicate via a reduceByKey round-trip (Spark's recipe).
template <typename T>
RDD<T> distinct(const RDD<T>& rdd, PartitionerPtr part = nullptr,
                std::string label = "distinct") {
  return rdd
      .map([](const T& x) { return std::pair<T, int>{x, 1}; },
           label + ".tag")
      .reduce_by_key([](int a, int) { return a; }, std::move(part),
                     label + ".dedup")
      .map([](const std::pair<T, int>& kv) { return kv.first; },
           std::move(label));
}

/// sortBy: total order by key function. Collect-sort-redistribute through
/// the driver (fine for driver-sized results; sparklet has no range
/// partitioner). Returns an RDD with `out_partitions` contiguous slices.
template <typename T, typename KeyFn>
RDD<T> sort_by(const RDD<T>& rdd, KeyFn key_fn, int out_partitions = 0,
               std::string label = "sortBy") {
  auto data = rdd.collect(label + ".collect");
  std::stable_sort(data.begin(), data.end(),
                   [&](const T& a, const T& b) { return key_fn(a) < key_fn(b); });
  return parallelize(rdd.context(), std::move(data), out_partitions,
                     std::move(label));
}

/// Bernoulli sample without replacement; deterministic in (seed, partition).
template <typename T>
RDD<T> sample(const RDD<T>& rdd, double fraction, std::uint64_t seed = 42,
              std::string label = "sample") {
  GS_THROW_IF(fraction < 0.0 || fraction > 1.0, gs::ConfigError,
              "sample fraction must be in [0, 1]");
  auto parent = rdd.node();
  return RDD<T>(TypedRdd<T>::make_narrow(
      parent->context(), std::move(label), parent->num_partitions(), {parent},
      parent->partitioner(), [parent, fraction, seed](int p) {
        gs::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL *
                            static_cast<std::uint64_t>(p + 1)));
        std::vector<T> out;
        for (const T& x : parent->partition(p)) {
          if (rng.bernoulli(fraction)) out.push_back(x);
        }
        return out;
      }));
}

/// zipWithIndex: global, stable element indices. Like Spark, needs one pass
/// to size the partitions (here: a materialize) before the narrow zip.
template <typename T>
RDD<std::pair<T, std::int64_t>> zip_with_index(
    const RDD<T>& rdd, std::string label = "zipWithIndex") {
  auto parent = rdd.node();
  rdd.cache();  // sizes must be known — Spark also runs a job here
  auto offsets = std::make_shared<std::vector<std::int64_t>>();
  offsets->reserve(static_cast<std::size_t>(parent->num_partitions()));
  std::int64_t running = 0;
  for (int p = 0; p < parent->num_partitions(); ++p) {
    offsets->push_back(running);
    running += static_cast<std::int64_t>(parent->partition_items(p));
  }
  return RDD<std::pair<T, std::int64_t>>(
      TypedRdd<std::pair<T, std::int64_t>>::make_narrow(
          parent->context(), std::move(label), parent->num_partitions(),
          {parent}, nullptr, [parent, offsets](int p) {
            std::vector<std::pair<T, std::int64_t>> out;
            std::int64_t idx = (*offsets)[static_cast<std::size_t>(p)];
            for (const T& x : parent->partition(p)) {
              out.emplace_back(x, idx++);
            }
            return out;
          }));
}

/// aggregate: seq_op folds elements into a per-partition accumulator,
/// comb_op merges accumulators on the driver (action).
template <typename T, typename A, typename SeqOp, typename CombOp>
A aggregate(const RDD<T>& rdd, A zero, SeqOp seq_op, CombOp comb_op) {
  rdd.cache();
  auto node = rdd.node();
  A acc = zero;
  for (int p = 0; p < node->num_partitions(); ++p) {
    A local = zero;
    for (const T& x : node->partition(p)) local = seq_op(std::move(local), x);
    acc = comb_op(std::move(acc), std::move(local));
  }
  return acc;
}

/// fold: aggregate with a single associative op.
template <typename T, typename Op>
T fold(const RDD<T>& rdd, T zero, Op op) {
  return aggregate(rdd, std::move(zero), op, op);
}

}  // namespace sparklet
