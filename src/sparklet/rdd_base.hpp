// rdd_base.hpp — type-erased RDD lineage node.
//
// Typed nodes (rdd.hpp) derive from RddBase; the scheduler (context.cpp)
// plans stages over RddBase pointers: a node whose input dependency is wide
// starts a new stage, everything else fuses into its parents' stage —
// Spark's stage-cutting rule.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sparklet/partitioner.hpp"

namespace sparklet {

class SparkContext;

class RddBase {
 public:
  RddBase(SparkContext* ctx, std::string label, int num_partitions,
          bool wide_input, std::vector<std::shared_ptr<RddBase>> parents,
          PartitionerPtr partitioner);
  virtual ~RddBase() = default;

  RddBase(const RddBase&) = delete;
  RddBase& operator=(const RddBase&) = delete;

  int id() const { return id_; }
  const std::string& label() const { return label_; }
  int num_partitions() const { return num_partitions_; }
  bool wide_input() const { return wide_input_; }
  bool materialized() const { return materialized_; }
  const std::vector<std::shared_ptr<RddBase>>& parents() const {
    return parents_;
  }
  /// Known key-partitioning of this RDD's data (null when unknown).
  const PartitionerPtr& partitioner() const { return partitioner_; }

  SparkContext* context() const { return ctx_; }

  /// Compute all partitions. Parents are guaranteed materialized. Called by
  /// the scheduler exactly once.
  virtual void do_materialize() = 0;

  /// Serialized size / item count of partition p (metrics + collect costs).
  virtual std::size_t partition_bytes(int p) const = 0;
  virtual std::size_t partition_items(int p) const = 0;

  /// Drop cached partitions (API-fidelity unpersist; lineage stays intact
  /// but re-computation is not supported — sparklet is eager-once).
  virtual void unpersist() = 0;

 protected:
  void mark_materialized() { materialized_ = true; }

  /// For checkpoint(): dropping parents releases ancestor partitions.
  std::vector<std::shared_ptr<RddBase>>& mutable_parents() { return parents_; }

  SparkContext* ctx_;

 private:
  int id_;
  std::string label_;
  int num_partitions_;
  bool wide_input_;
  std::vector<std::shared_ptr<RddBase>> parents_;

 protected:
  PartitionerPtr partitioner_;

 private:
  bool materialized_ = false;
};

}  // namespace sparklet
