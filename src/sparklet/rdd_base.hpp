// rdd_base.hpp — type-erased RDD lineage node.
//
// Typed nodes (rdd.hpp) derive from RddBase; the scheduler (context.cpp)
// plans stages over RddBase pointers: a node whose input dependency is wide
// starts a new stage, everything else fuses into its parents' stage —
// Spark's stage-cutting rule.
//
// The fault-tolerance layer adds a per-partition availability model: a
// materialized node can *lose* partitions (executor kill, memory-pressure
// eviction, injected fetch failure) and regenerate exactly the missing ones
// from lineage via recompute_missing(). Checkpointed nodes have their data
// pinned in the shared block store; losing their partitions is unrecoverable
// because checkpoint() truncates the lineage that could recompute them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sparklet/partitioner.hpp"
#include "sparklet/storage_level.hpp"

namespace sparklet {

class SparkContext;

class RddBase {
 public:
  RddBase(SparkContext* ctx, std::string label, int num_partitions,
          bool wide_input, std::vector<std::shared_ptr<RddBase>> parents,
          PartitionerPtr partitioner);
  virtual ~RddBase();  // deregisters from the context's live-node registry

  RddBase(const RddBase&) = delete;
  RddBase& operator=(const RddBase&) = delete;

  int id() const { return id_; }
  const std::string& label() const { return label_; }
  int num_partitions() const { return num_partitions_; }
  bool wide_input() const { return wide_input_; }
  bool materialized() const { return materialized_; }
  const std::vector<std::shared_ptr<RddBase>>& parents() const {
    return parents_;
  }
  /// Known key-partitioning of this RDD's data (null when unknown).
  const PartitionerPtr& partitioner() const { return partitioner_; }

  SparkContext* context() const { return ctx_; }

  /// Compute all partitions. Parents are guaranteed materialized. Called by
  /// the scheduler (again after a failed attempt — the computation is pure).
  virtual void do_materialize() = 0;

  /// Serialized size / item count of partition p (metrics + collect costs).
  virtual std::size_t partition_bytes(int p) const = 0;
  virtual std::size_t partition_items(int p) const = 0;

  /// Drop cached partitions; they can be regenerated from lineage as long as
  /// the node is recomputable().
  virtual void unpersist() = 0;

  // ----------------- fault tolerance (partition granularity) -----------------

  /// Is partition p's cached data resident?
  virtual bool partition_available(int p) const = 0;
  /// Simulate losing partition p's cached data (executor kill / eviction).
  virtual void drop_partition(int p) = 0;
  /// Can missing partitions be regenerated? False once checkpoint() has
  /// truncated lineage and released the compute closures.
  virtual bool recomputable() const = 0;
  /// Regenerate missing partitions from lineage (parents must be available;
  /// a missing parent partition surfaces as gs::FetchFailedError). Returns
  /// the number of partitions recomputed.
  virtual int recompute_missing() = 0;
  /// Deterministic content fingerprint of partition p for block validation.
  virtual std::uint64_t partition_checksum(int p) const = 0;

  // ----------------- storage levels (tiered caching) -----------------

  /// How this node's cached partitions are held in the executor store.
  StorageLevel storage_level() const { return storage_level_; }
  void set_storage_level(StorageLevel level) { storage_level_ = level; }

  /// Encode partition p's data into a compact byte payload (item_codec
  /// envelope). nullopt when the element type has no codec — the store then
  /// keeps the block deserialized regardless of the requested level.
  virtual std::optional<std::vector<std::uint8_t>> encode_partition(
      int /*p*/) const {
    return std::nullopt;
  }
  /// Rebuild partition p's in-memory data from a payload produced by
  /// encode_partition(). Returns false on decode failure (corrupt payload);
  /// the caller falls back to lineage recomputation.
  virtual bool restore_partition(int /*p*/,
                                 const std::vector<std::uint8_t>& /*payload*/) {
    return false;
  }
  /// Release partition p's deserialized data after a lossless demotion (the
  /// payload or spill file stays authoritative). Default: same as losing it.
  virtual void release_partition_data(int p) { drop_partition(p); }

  bool checkpointed() const { return checkpointed_; }
  void mark_checkpointed() { checkpointed_ = true; }

  /// Monotone counter of task-set executions over this node, bumped by the
  /// scheduler (driver-side, so independent of thread interleaving). Seeds
  /// chaos decisions: a retried stage draws fresh failures.
  std::uint64_t next_run_epoch() { return run_epoch_++; }
  std::uint64_t run_epoch() const { return run_epoch_; }

 protected:
  void mark_materialized() { materialized_ = true; }

  /// For checkpoint(): dropping parents releases ancestor partitions.
  std::vector<std::shared_ptr<RddBase>>& mutable_parents() { return parents_; }

  SparkContext* ctx_;

 private:
  int id_;
  std::string label_;
  int num_partitions_;
  bool wide_input_;
  std::vector<std::shared_ptr<RddBase>> parents_;

 protected:
  PartitionerPtr partitioner_;

 private:
  bool materialized_ = false;
  bool checkpointed_ = false;
  StorageLevel storage_level_ = StorageLevel::kMemoryOnly;
  std::uint64_t run_epoch_ = 0;
};

}  // namespace sparklet
