#include "sparklet/metrics.hpp"

#include "support/format.hpp"

namespace sparklet {

RecoveryCounters operator-(const RecoveryCounters& a,
                           const RecoveryCounters& b) {
  RecoveryCounters d;
  d.task_failures = a.task_failures - b.task_failures;
  d.task_retries = a.task_retries - b.task_retries;
  d.executor_kills = a.executor_kills - b.executor_kills;
  d.tasks_rescheduled = a.tasks_rescheduled - b.tasks_rescheduled;
  d.partitions_dropped = a.partitions_dropped - b.partitions_dropped;
  d.partitions_recomputed = a.partitions_recomputed - b.partitions_recomputed;
  d.fetch_failures = a.fetch_failures - b.fetch_failures;
  d.stage_resubmissions = a.stage_resubmissions - b.stage_resubmissions;
  d.checkpoint_blocks = a.checkpoint_blocks - b.checkpoint_blocks;
  d.checkpoint_bytes = a.checkpoint_bytes - b.checkpoint_bytes;
  d.corrupted_blocks = a.corrupted_blocks - b.corrupted_blocks;
  d.evictions = a.evictions - b.evictions;
  d.stragglers_injected = a.stragglers_injected - b.stragglers_injected;
  d.speculative_launches = a.speculative_launches - b.speculative_launches;
  d.speculative_wins = a.speculative_wins - b.speculative_wins;
  d.spilled_blocks = a.spilled_blocks - b.spilled_blocks;
  d.spilled_bytes = a.spilled_bytes - b.spilled_bytes;
  d.spill_readbacks = a.spill_readbacks - b.spill_readbacks;
  d.spill_readback_bytes = a.spill_readback_bytes - b.spill_readback_bytes;
  d.corrupt_spills = a.corrupt_spills - b.corrupt_spills;
  d.spill_write_failures = a.spill_write_failures - b.spill_write_failures;
  return d;
}

MetricsScope::MetricsScope(const MetricsRegistry& metrics,
                           const VirtualTimeline& timeline)
    : metrics_(metrics),
      timeline_(timeline),
      virtual0_(timeline.now()),
      stages0_(metrics.num_stages()),
      stage_tasks0_(metrics.total_stage_tasks()),
      shuffle_read0_(metrics.total_shuffle_read()),
      shuffle_write0_(metrics.total_shuffle_write()),
      collect0_(metrics.total_collect_bytes()),
      broadcast0_(metrics.total_broadcast_bytes()),
      record0_(timeline.stages().size()),
      recovery0_(metrics.recovery()) {}

MetricsDelta MetricsScope::delta() const {
  MetricsDelta d;
  d.virtual_begin_s = virtual0_;
  d.virtual_end_s = timeline_.now();
  d.virtual_seconds = d.virtual_end_s - d.virtual_begin_s;
  d.stages = metrics_.num_stages() - stages0_;
  d.tasks = metrics_.total_stage_tasks() - stage_tasks0_;
  d.shuffle_read_bytes = metrics_.total_shuffle_read() - shuffle_read0_;
  d.shuffle_write_bytes = metrics_.total_shuffle_write() - shuffle_write0_;
  d.collect_bytes = metrics_.total_collect_bytes() - collect0_;
  d.broadcast_bytes = metrics_.total_broadcast_bytes() - broadcast0_;
  d.record_begin = record0_;
  d.record_end = timeline_.stages().size();
  d.recovery = metrics_.recovery() - recovery0_;
  return d;
}

void MetricsRegistry::add_task(const TaskMetric& t) {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.push_back(t);
}

void MetricsRegistry::add_stage(const StageMetric& s) {
  std::lock_guard<std::mutex> lock(mu_);
  stages_.push_back(s);
}

void MetricsRegistry::add_job(const JobMetric& j) {
  std::lock_guard<std::mutex> lock(mu_);
  jobs_.push_back(j);
}

void MetricsRegistry::add_collect_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  collect_bytes_ += bytes;
}

void MetricsRegistry::add_broadcast_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  broadcast_bytes_ += bytes;
}

RecoveryCounters MetricsRegistry::recovery() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovery_;
}

void MetricsRegistry::note_task_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.task_failures;
}

void MetricsRegistry::note_task_retry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.task_retries;
}

void MetricsRegistry::note_executor_kill() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.executor_kills;
}

void MetricsRegistry::note_tasks_rescheduled(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  recovery_.tasks_rescheduled += n;
}

void MetricsRegistry::note_partitions_dropped(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  recovery_.partitions_dropped += n;
}

void MetricsRegistry::note_partitions_recomputed(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  recovery_.partitions_recomputed += n;
}

void MetricsRegistry::note_fetch_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.fetch_failures;
}

void MetricsRegistry::note_stage_resubmission() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.stage_resubmissions;
}

void MetricsRegistry::note_checkpoint_block(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.checkpoint_blocks;
  recovery_.checkpoint_bytes += bytes;
}

void MetricsRegistry::note_corrupted_block() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.corrupted_blocks;
}

void MetricsRegistry::note_eviction() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.evictions;
}

void MetricsRegistry::note_straggler() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.stragglers_injected;
}

void MetricsRegistry::note_speculative_launch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.speculative_launches;
}

void MetricsRegistry::note_speculative_win() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.speculative_wins;
}

void MetricsRegistry::note_spill(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.spilled_blocks;
  recovery_.spilled_bytes += bytes;
}

void MetricsRegistry::note_spill_readback(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.spill_readbacks;
  recovery_.spill_readback_bytes += bytes;
}

void MetricsRegistry::note_corrupt_spill() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.corrupt_spills;
}

void MetricsRegistry::note_spill_write_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++recovery_.spill_write_failures;
}

std::vector<TaskMetric> MetricsRegistry::tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_;
}

std::vector<StageMetric> MetricsRegistry::stages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

std::vector<JobMetric> MetricsRegistry::jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_;
}

int MetricsRegistry::total_stage_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  int sum = 0;
  for (const auto& s : stages_) sum += s.num_tasks;
  return sum;
}

std::size_t MetricsRegistry::total_shuffle_read() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t sum = 0;
  for (const auto& s : stages_) sum += s.shuffle_read_bytes;
  return sum;
}

std::size_t MetricsRegistry::total_shuffle_write() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t sum = 0;
  for (const auto& s : stages_) sum += s.shuffle_write_bytes;
  return sum;
}

std::size_t MetricsRegistry::total_collect_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return collect_bytes_;
}

std::size_t MetricsRegistry::total_broadcast_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broadcast_bytes_;
}

int MetricsRegistry::num_stages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(stages_.size());
}

int MetricsRegistry::num_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tasks_.size());
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.clear();
  stages_.clear();
  jobs_.clear();
  collect_bytes_ = 0;
  broadcast_bytes_ = 0;
  recovery_ = RecoveryCounters{};
}

void MetricsRegistry::print_summary(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << gs::strfmt("sparklet: %zu stages, %zu tasks\n", stages_.size(),
                   tasks_.size());
  for (const auto& s : stages_) {
    os << gs::strfmt(
        "  stage %3d %-28s tasks=%4d wall=%8s shuffle(r/w)=%s/%s%s\n",
        s.stage_id, s.name.c_str(), s.num_tasks,
        gs::human_seconds(s.wall_s).c_str(),
        gs::human_bytes(double(s.shuffle_read_bytes)).c_str(),
        gs::human_bytes(double(s.shuffle_write_bytes)).c_str(),
        s.shuffle_input ? " [wide]" : "");
  }
  os << gs::strfmt("  collect=%s broadcast=%s\n",
                   gs::human_bytes(double(collect_bytes_)).c_str(),
                   gs::human_bytes(double(broadcast_bytes_)).c_str());
  const RecoveryCounters& r = recovery_;
  if (r.task_failures || r.executor_kills || r.fetch_failures ||
      r.stage_resubmissions || r.checkpoint_blocks || r.evictions ||
      r.stragglers_injected || r.partitions_recomputed) {
    os << gs::strfmt(
        "  recovery: %d task failures (%d retries), %d executor kills "
        "(%d tasks rescheduled), %d fetch failures, %d stage resubmissions,\n"
        "            %d partitions dropped / %d recomputed, %d evictions, "
        "%d checkpoint blocks (%s, %d corrupted),\n"
        "            %d stragglers, %d speculative launches (%d wins)\n",
        r.task_failures, r.task_retries, r.executor_kills, r.tasks_rescheduled,
        r.fetch_failures, r.stage_resubmissions, r.partitions_dropped,
        r.partitions_recomputed, r.evictions, r.checkpoint_blocks,
        gs::human_bytes(double(r.checkpoint_bytes)).c_str(),
        r.corrupted_blocks, r.stragglers_injected, r.speculative_launches,
        r.speculative_wins);
  }
  if (r.spilled_blocks || r.spill_readbacks || r.corrupt_spills ||
      r.spill_write_failures) {
    os << gs::strfmt(
        "  storage:  %d blocks spilled (%s), %d readbacks (%s), "
        "%d corrupt spills, %d refused spill writes\n",
        r.spilled_blocks, gs::human_bytes(double(r.spilled_bytes)).c_str(),
        r.spill_readbacks,
        gs::human_bytes(double(r.spill_readback_bytes)).c_str(),
        r.corrupt_spills, r.spill_write_failures);
  }
}

}  // namespace sparklet
