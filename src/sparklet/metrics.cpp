#include "sparklet/metrics.hpp"

#include "support/format.hpp"

namespace sparklet {

void MetricsRegistry::add_task(const TaskMetric& t) {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.push_back(t);
}

void MetricsRegistry::add_stage(const StageMetric& s) {
  std::lock_guard<std::mutex> lock(mu_);
  stages_.push_back(s);
}

void MetricsRegistry::add_job(const JobMetric& j) {
  std::lock_guard<std::mutex> lock(mu_);
  jobs_.push_back(j);
}

void MetricsRegistry::add_collect_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  collect_bytes_ += bytes;
}

void MetricsRegistry::add_broadcast_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  broadcast_bytes_ += bytes;
}

std::vector<TaskMetric> MetricsRegistry::tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_;
}

std::vector<StageMetric> MetricsRegistry::stages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

std::vector<JobMetric> MetricsRegistry::jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_;
}

int MetricsRegistry::total_stage_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  int sum = 0;
  for (const auto& s : stages_) sum += s.num_tasks;
  return sum;
}

std::size_t MetricsRegistry::total_shuffle_read() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t sum = 0;
  for (const auto& s : stages_) sum += s.shuffle_read_bytes;
  return sum;
}

std::size_t MetricsRegistry::total_shuffle_write() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t sum = 0;
  for (const auto& s : stages_) sum += s.shuffle_write_bytes;
  return sum;
}

std::size_t MetricsRegistry::total_collect_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return collect_bytes_;
}

std::size_t MetricsRegistry::total_broadcast_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broadcast_bytes_;
}

int MetricsRegistry::num_stages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(stages_.size());
}

int MetricsRegistry::num_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tasks_.size());
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.clear();
  stages_.clear();
  jobs_.clear();
  collect_bytes_ = 0;
  broadcast_bytes_ = 0;
}

void MetricsRegistry::print_summary(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << gs::strfmt("sparklet: %zu stages, %zu tasks\n", stages_.size(),
                   tasks_.size());
  for (const auto& s : stages_) {
    os << gs::strfmt(
        "  stage %3d %-28s tasks=%4d wall=%8s shuffle(r/w)=%s/%s%s\n",
        s.stage_id, s.name.c_str(), s.num_tasks,
        gs::human_seconds(s.wall_s).c_str(),
        gs::human_bytes(double(s.shuffle_read_bytes)).c_str(),
        gs::human_bytes(double(s.shuffle_write_bytes)).c_str(),
        s.shuffle_input ? " [wide]" : "");
  }
  os << gs::strfmt("  collect=%s broadcast=%s\n",
                   gs::human_bytes(double(collect_bytes_)).c_str(),
                   gs::human_bytes(double(broadcast_bytes_)).c_str());
}

}  // namespace sparklet
