#include "sparklet/spill_store.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "sparklet/block_store.hpp"
#include "sparklet/item_codec.hpp"
#include "support/format.hpp"

namespace sparklet {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'G', 'S', 'S', 'P', 'I', 'L', 'L', '1'};
constexpr std::size_t kHeaderBytes = 8 + 8 + 8;

std::string unique_temp_root() {
  // One counter per process keeps concurrent SparkContexts (tests run many)
  // from sharing a root; the pid keeps concurrent *processes* apart.
  static std::atomic<int> counter{0};
  const int n = counter.fetch_add(1);
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) base = "/tmp";
  return (base / gs::strfmt("sparklet-spill-%d-%d", static_cast<int>(getpid()),
                            n))
      .string();
}

void put_u64(std::ofstream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

SpillStore::SpillStore(std::string root) : root_(std::move(root)) {
  if (root_.empty()) {
    root_ = unique_temp_root();
    owns_root_ = true;
  }
}

SpillStore::~SpillStore() {
  std::error_code ec;
  if (owns_root_) {
    fs::remove_all(root_, ec);  // best effort; never throw from a dtor
  }
}

std::string SpillStore::file_path(const BlockId& id, int node) const {
  return (fs::path(root_) / gs::strfmt("node%d", node) /
          gs::strfmt("b%d_p%d.spill", id.rdd, id.partition))
      .string();
}

bool SpillStore::write(const BlockId& id, int node,
                       const std::vector<std::uint8_t>& payload) {
  if (node >= 0 && static_cast<std::size_t>(node) < enospc_.size() &&
      enospc_[static_cast<std::size_t>(node)]) {
    return false;  // injected ENOSPC: the node's spill volume is full
  }
  const fs::path path = file_path(id, node);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) return false;
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kMagic, 8);
    put_u64(out, payload.size());
    put_u64(out, payload_checksum(payload));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  // Atomic publish: readers see the complete old file or the complete new
  // one, never a partial write.
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  ++files_written_;
  bytes_written_ += payload.size();
  return true;
}

std::optional<std::vector<std::uint8_t>> SpillStore::read(const BlockId& id,
                                                          int node) const {
  const fs::path path = file_path(id, node);
  std::error_code ec;
  const std::uintmax_t file_size = fs::file_size(path, ec);
  if (ec || file_size < kHeaderBytes) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char header[kHeaderBytes];
  in.read(header, kHeaderBytes);
  if (in.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    return std::nullopt;  // torn inside the header
  }
  if (std::memcmp(header, kMagic, 8) != 0) return std::nullopt;
  const std::uint64_t len = get_u64(header + 8);
  const std::uint64_t expect = get_u64(header + 16);
  if (len > file_size - kHeaderBytes) {
    // The checksum covers only the payload, so a bit-flipped length field
    // would otherwise turn into a giant allocation instead of a clean miss.
    return std::nullopt;
  }
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(len));
  if (in.gcount() != static_cast<std::streamsize>(len)) {
    return std::nullopt;  // torn inside the payload
  }
  if (payload_checksum(payload) != expect) return std::nullopt;  // bit rot
  return payload;
}

void SpillStore::remove(const BlockId& id, int node) {
  std::error_code ec;
  fs::remove(file_path(id, node), ec);
}

void SpillStore::remove_rdd(int rdd) {
  const std::string prefix = gs::strfmt("b%d_p", rdd);
  std::error_code ec;
  if (!fs::exists(root_, ec)) return;
  for (const auto& node_dir : fs::directory_iterator(root_, ec)) {
    if (!node_dir.is_directory(ec)) continue;
    for (const auto& entry : fs::directory_iterator(node_dir.path(), ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) == 0) fs::remove(entry.path(), ec);
    }
  }
}

void SpillStore::set_enospc(int node, bool full) {
  if (node < 0) return;
  if (static_cast<std::size_t>(node) >= enospc_.size()) {
    enospc_.resize(static_cast<std::size_t>(node) + 1, 0);
  }
  enospc_[static_cast<std::size_t>(node)] = full ? 1 : 0;
}

void SpillStore::clear_enospc() { enospc_.clear(); }

bool SpillStore::corrupt_file(const BlockId& id, int node) {
  const fs::path path = file_path(id, node);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size <= kHeaderBytes) return false;
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) return false;
  // Flip one bit mid-payload; the header stays valid so only the checksum
  // catches it.
  const std::streamoff at =
      static_cast<std::streamoff>(kHeaderBytes + (size - kHeaderBytes) / 2);
  f.seekg(at);
  char byte = 0;
  f.read(&byte, 1);
  if (!f) return false;
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(at);
  f.write(&byte, 1);
  return static_cast<bool>(f);
}

bool SpillStore::truncate_file(const BlockId& id, int node) {
  const fs::path path = file_path(id, node);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size <= kHeaderBytes) return false;
  // Keep the header + half the payload: the length field now promises more
  // bytes than exist, which read() detects as a short read.
  fs::resize_file(path, kHeaderBytes + (size - kHeaderBytes) / 2, ec);
  return !ec;
}

bool SpillStore::contains(const BlockId& id, int node) const {
  std::error_code ec;
  return fs::exists(file_path(id, node), ec);
}

}  // namespace sparklet
