// item_bytes.hpp — serialized-size estimation for RDD elements.
//
// Sparklet never actually serializes (everything is in-process), but shuffle
// accounting, collect/broadcast costs, and the block-store capacity model all
// need the bytes Spark *would* move. `item_bytes` is the customization point;
// the default covers trivially-copyable types, with overloads for the tile
// payloads and common composites.
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grid/tile.hpp"

namespace sparklet {

// Forward declarations so composite overloads (pair, vector) can see each
// other regardless of definition order.
template <typename A, typename B>
std::size_t item_bytes(const std::pair<A, B>& p);
template <typename T>
std::size_t item_bytes(const std::vector<T>& v);

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::size_t item_bytes(const T&) {
  return sizeof(T);
}

inline std::size_t item_bytes(const std::string& s) { return s.size() + 16; }

template <typename T>
std::size_t item_bytes(const gs::Tile<T>& t) {
  return t.bytes();
}

/// A TileRef crossing a stage boundary costs a full tile — sharing the
/// payload in-process is an implementation convenience, not a semantics.
template <typename T>
std::size_t item_bytes(const gs::TileRef<T>& t) {
  return t ? t->bytes() : 8;
}

template <typename A, typename B>
std::size_t item_bytes(const std::pair<A, B>& p) {
  return item_bytes(p.first) + item_bytes(p.second);
}

template <typename T>
std::size_t item_bytes(const std::vector<T>& v) {
  std::size_t sum = 24;
  for (const auto& x : v) sum += item_bytes(x);
  return sum;
}

template <typename K, typename V, typename H, typename E, typename A>
std::size_t item_bytes(const std::unordered_map<K, V, H, E, A>& m) {
  std::size_t sum = 48;
  for (const auto& [k, v] : m) sum += item_bytes(k) + item_bytes(v);
  return sum;
}

template <typename Range>
std::size_t range_bytes(const Range& r) {
  std::size_t sum = 0;
  for (const auto& x : r) sum += item_bytes(x);
  return sum;
}

}  // namespace sparklet
