#include "sparklet/cluster.hpp"

namespace sparklet {

ClusterConfig ClusterConfig::skylake_cluster(int nodes) {
  ClusterConfig c;
  c.name = "cluster1-skylake";
  c.num_nodes = nodes;
  c.node.physical_cores = 32;
  c.node.mem_bytes = 192.0e9;
  c.node.l1_bytes = 32.0 * 1024;
  c.node.l2_bytes = 1024.0 * 1024;  // paper: 1024KB L2
  c.node.l3_bytes = 22.0 * 1024 * 1024;
  c.node.core_updates_per_s = 1.0e9;
  c.local_disk = DiskSpec::ssd(1.0e12);  // paper: one standard 1TB SSD
  // Shared persistent storage (CB's distribution channel): campus parallel
  // filesystem — decent aggregate bandwidth.
  c.shared_fs = DiskSpec{2.0e9, 1.0e9, 0.5e-3, 100.0e12, "parallel-fs"};
  c.executor_cores = 32;
  c.executor_mem_bytes = 160.0e9;  // paper: 160GB executor/driver memory
  c.stage_overhead_s = 0.15;       // real-Spark stage latency at this scale
  return c;
}

ClusterConfig ClusterConfig::haswell_cluster(int nodes) {
  ClusterConfig c;
  c.name = "cluster2-haswell";
  c.num_nodes = nodes;
  c.node.physical_cores = 20;  // dual 10-core E5-2650v3
  c.node.mem_bytes = 64.0e9;
  c.node.l1_bytes = 32.0 * 1024;
  c.node.l2_bytes = 256.0 * 1024;  // Haswell: 256KB L2 per core
  c.node.l3_bytes = 25.0 * 1024 * 1024;
  c.node.core_updates_per_s = 0.8e9;  // 2.3GHz Haswell vs 2.1GHz Skylake+AVX512
  c.local_disk = DiskSpec::hdd(1.0e12);  // 7500rpm SATA spinning drives
  // Older shared storage tier: noticeably slower aggregate bandwidth.
  c.shared_fs = DiskSpec{0.8e9, 0.4e9, 2e-3, 100.0e12, "parallel-fs-old"};
  c.executor_cores = 20;
  c.executor_mem_bytes = 60.0e9;  // paper: 60GB
  c.stage_overhead_s = 0.18;
  return c;
}

ClusterConfig ClusterConfig::local(int nodes, int cores) {
  ClusterConfig c;
  c.name = "local";
  c.num_nodes = nodes;
  c.node.physical_cores = cores;
  c.node.mem_bytes = 8.0e9;
  c.executor_cores = cores;
  c.executor_mem_bytes = 4.0e9;
  c.local_disk = DiskSpec::ssd(64.0e9);
  c.shared_fs = DiskSpec::ssd(64.0e9);
  return c;
}

}  // namespace sparklet
