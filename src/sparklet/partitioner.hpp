// partitioner.hpp — key → partition placement policies.
//
// Spark's default is hash partitioning; the paper (§V-B) uses it with
// 2× total-cores partitions and names grid-aware custom partitioners as
// future work (§VI). We implement both: the future-work GridPartitioner is
// exercised by an ablation benchmark.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "grid/tile.hpp"
#include "support/check.hpp"

namespace sparklet {

/// Partitioners operate on a pre-hashed key so RDDs of any key type share
/// one interface. Keyed RDD operations hash with sparklet::key_hash().
class Partitioner {
 public:
  explicit Partitioner(int num_partitions) : num_partitions_(num_partitions) {
    GS_THROW_IF(num_partitions < 1, gs::ConfigError,
                "partitioner needs >= 1 partition");
  }
  virtual ~Partitioner() = default;

  int num_partitions() const { return num_partitions_; }

  virtual int partition_of(std::uint64_t key_hash) const = 0;
  virtual std::string name() const = 0;

  /// Co-partitioning test: when true, re-partitioning by `other` is a no-op
  /// and sparklet elides the shuffle (paper footnote 1).
  virtual bool equivalent_to(const Partitioner& other) const {
    return name() == other.name() && num_partitions_ == other.num_partitions();
  }

 private:
  int num_partitions_;
};

using PartitionerPtr = std::shared_ptr<const Partitioner>;

/// Spark's default: partition = hash(key) mod p. key_hash() for TileKey is a
/// lossless pack (so GridPartitioner can unpack it); mix it here so the
/// default placement is the paper's "probabilistic" distribution.
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(int num_partitions) : Partitioner(num_partitions) {}

  int partition_of(std::uint64_t key_hash) const override {
    std::uint64_t z = key_hash + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<int>(z % static_cast<std::uint64_t>(num_partitions()));
  }

  std::string name() const override { return "hash"; }
};

/// Grid-aware partitioner for TileKey-keyed RDDs (the paper's §VI future
/// work): tiles are placed by grid coordinate with a diagonal shift,
/// i·(r+1) + j, so that grid ROWS, COLUMNS, and trailing submatrices all
/// spread evenly across partitions. (Plain row-major block-cyclic i·r + j
/// is pathological for the pivot-COLUMN stage: every tile (i, k) of column
/// k maps to the same residue class mod the executor count — one executor
/// gets the whole B/C stage. The shifted layout fixes rows and columns
/// simultaneously.) Keys must be hashed with the lossless TileKey packing.
class GridPartitioner final : public Partitioner {
 public:
  GridPartitioner(int num_partitions, int grid_side)
      : Partitioner(num_partitions), grid_side_(grid_side) {
    GS_THROW_IF(grid_side < 1, gs::ConfigError, "grid side must be >= 1");
  }

  int partition_of(std::uint64_t key_hash) const override {
    const auto i = static_cast<std::uint32_t>(key_hash >> 32);
    const auto j = static_cast<std::uint32_t>(key_hash & 0xffffffffu);
    const std::uint64_t linear =
        static_cast<std::uint64_t>(i) *
            (static_cast<std::uint64_t>(grid_side_) + 1) +
        j;
    return static_cast<int>(linear % static_cast<std::uint64_t>(num_partitions()));
  }

  std::string name() const override { return "grid"; }

  bool equivalent_to(const Partitioner& other) const override {
    const auto* g = dynamic_cast<const GridPartitioner*>(&other);
    return g != nullptr && g->num_partitions() == num_partitions() &&
           g->grid_side_ == grid_side_;
  }

 private:
  int grid_side_;
};

// --- key hashing ------------------------------------------------------

/// Hash used by keyed operations. TileKey gets a *lossless* packing so
/// GridPartitioner can recover coordinates; everything else mixes via
/// std::hash.
inline std::uint64_t key_hash(const gs::TileKey& k) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.i)) << 32) |
         static_cast<std::uint32_t>(k.j);
}

inline std::uint64_t key_hash(std::int64_t k) {
  std::uint64_t z = static_cast<std::uint64_t>(k) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
inline std::uint64_t key_hash(std::int32_t k) {
  return key_hash(static_cast<std::int64_t>(k));
}
inline std::uint64_t key_hash(std::uint64_t k) {
  return key_hash(static_cast<std::int64_t>(k));
}

inline std::uint64_t key_hash(const std::string& s) {
  // FNV-1a
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace sparklet
