// tile.hpp — one dense block of the decomposed DP table.
//
// Tiles are the *values* of the pair RDD in the Spark-style drivers (the key
// is the grid coordinate). They are square in the solvers but the type
// supports rectangles for generality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "grid/matrix.hpp"
#include "support/buffer.hpp"
#include "support/span2d.hpp"

namespace gs {

/// Tile payloads live in AlignedBuffer storage, so every tile base pointer
/// is cache-line aligned. The SIMD micro-kernels and the fused D backend's
/// panel packing rely on this: a 64-byte base plus cache-line-padded packed
/// strides means vector loads never split a line.
inline constexpr std::size_t kTileAlignment = kCacheLineBytes;
static_assert(kTileAlignment == 64 && (kTileAlignment & (kTileAlignment - 1)) == 0,
              "tile storage must be 64-byte (cache line) aligned");

/// Grid coordinate of a tile: (block-row, block-col).
struct TileKey {
  std::int32_t i = 0;
  std::int32_t j = 0;

  friend bool operator==(const TileKey&, const TileKey&) = default;
  friend auto operator<=>(const TileKey&, const TileKey&) = default;
};

struct TileKeyHash {
  std::size_t operator()(const TileKey& k) const {
    // 2D -> 1D mix; grids are small (r <= a few hundred) so this is plenty.
    const std::uint64_t x =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.i)) << 32) |
        static_cast<std::uint32_t>(k.j);
    std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// A dense tile. Copy is deep (the IM driver's fan-out makes real copies,
/// matching Spark's shuffle semantics where each consumer gets its own
/// deserialized block).
template <typename T>
class Tile {
 public:
  Tile() = default;
  Tile(std::size_t rows, std::size_t cols) : m_(rows, cols) {}
  Tile(std::size_t rows, std::size_t cols, const T& fill) : m_(rows, cols, fill) {}
  explicit Tile(Matrix<T> m) : m_(std::move(m)) {}

  std::size_t rows() const { return m_.rows(); }
  std::size_t cols() const { return m_.cols(); }
  bool empty() const { return m_.empty(); }

  T& operator()(std::size_t i, std::size_t j) { return m_(i, j); }
  const T& operator()(std::size_t i, std::size_t j) const { return m_(i, j); }

  Span2D<T> span() { return m_.span(); }
  Span2D<const T> span() const { return m_.span(); }

  /// Serialized payload size — what Spark would move over the wire for this
  /// block. Used by sparklet's shuffle accounting and the simulators.
  std::size_t bytes() const { return m_.size() * sizeof(T) + 64; }

  /// True when the backing storage honours the kTileAlignment contract
  /// (always, by construction — asserted by the alignment unit tests).
  bool storage_aligned() const {
    const auto addr = reinterpret_cast<std::uintptr_t>(
        static_cast<const void*>(m_.span().data()));
    return empty() || addr % kTileAlignment == 0;
  }

  friend bool operator==(const Tile& a, const Tile& b) { return a.m_ == b.m_; }

 private:
  Matrix<T> m_;
};

/// Shared-immutable tile handle. Sparklet RDD elements are copied between
/// lineage nodes; sharing the payload keeps the *real* execution affordable
/// while the metrics layer still charges full copy bytes where Spark would.
template <typename T>
using TileRef = std::shared_ptr<const Tile<T>>;

template <typename T, typename... Args>
TileRef<T> make_tile(Args&&... args) {
  return std::make_shared<const Tile<T>>(std::forward<Args>(args)...);
}

}  // namespace gs
