// tile_grid.hpp — blocked decomposition of the DP table.
//
// The solvers decompose the n×n table into an r×r grid of b×b tiles
// (n' = r·b with virtual padding when r ∤ n, paper §IV-A). TileGrid is the
// driver-side representation used to scatter a matrix into the RDD and to
// gather the result back.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "grid/matrix.hpp"
#include "grid/tile.hpp"
#include "support/check.hpp"

namespace gs {

struct BlockLayout {
  std::size_t n = 0;        ///< logical problem size (n×n table)
  std::size_t block = 0;    ///< tile side b
  std::size_t r = 0;        ///< grid side: r = ceil(n / b)
  std::size_t padded_n = 0; ///< r * b

  static BlockLayout for_problem(std::size_t n, std::size_t block) {
    GS_THROW_IF(n == 0 || block == 0, ConfigError,
                "problem size and block size must be positive");
    BlockLayout l;
    l.n = n;
    l.block = block;
    l.r = (n + block - 1) / block;
    l.padded_n = l.r * block;
    return l;
  }

  /// Layout from a requested grid side r (paper's tuning knob): b = ceil(n/r).
  static BlockLayout for_grid(std::size_t n, std::size_t r) {
    GS_THROW_IF(n == 0 || r == 0, ConfigError,
                "problem size and grid side must be positive");
    return for_problem(n, (n + r - 1) / r);
  }

  std::size_t num_tiles() const { return r * r; }
  bool padded() const { return padded_n != n; }

  friend bool operator==(const BlockLayout&, const BlockLayout&) = default;
};

template <typename T>
class TileGrid {
 public:
  TileGrid() = default;

  /// Scatter: cut `m` (n×n) into tiles, padding the bottom/right margin with
  /// `pad_off` everywhere and `pad_diag` on the global diagonal. The neutral
  /// values come from the GepSpec so padded cells never perturb real cells.
  TileGrid(const Matrix<T>& m, std::size_t block, T pad_diag, T pad_off)
      : layout_(BlockLayout::for_problem(m.rows(), block)) {
    GS_THROW_IF(m.rows() != m.cols(), ConfigError, "DP table must be square");
    tiles_.resize(layout_.num_tiles());
    const std::size_t b = layout_.block;
    for (std::size_t bi = 0; bi < layout_.r; ++bi) {
      for (std::size_t bj = 0; bj < layout_.r; ++bj) {
        Tile<T> t(b, b);
        for (std::size_t i = 0; i < b; ++i) {
          for (std::size_t j = 0; j < b; ++j) {
            const std::size_t gi = bi * b + i;
            const std::size_t gj = bj * b + j;
            if (gi < layout_.n && gj < layout_.n) {
              t(i, j) = m(gi, gj);
            } else {
              t(i, j) = (gi == gj) ? pad_diag : pad_off;
            }
          }
        }
        tiles_[bi * layout_.r + bj] = make_tile<T>(std::move(t));
      }
    }
  }

  const BlockLayout& layout() const { return layout_; }

  TileRef<T> at(std::size_t bi, std::size_t bj) const {
    GS_DCHECK(bi < layout_.r && bj < layout_.r);
    return tiles_[bi * layout_.r + bj];
  }

  void set(std::size_t bi, std::size_t bj, TileRef<T> tile) {
    GS_DCHECK(bi < layout_.r && bj < layout_.r);
    GS_CHECK_MSG(tile && tile->rows() == layout_.block &&
                     tile->cols() == layout_.block,
                 "tile shape does not match layout");
    tiles_[bi * layout_.r + bj] = std::move(tile);
  }

  /// All (key, tile) pairs in row-major order — the RDD seed.
  std::vector<std::pair<TileKey, TileRef<T>>> entries() const {
    std::vector<std::pair<TileKey, TileRef<T>>> out;
    out.reserve(tiles_.size());
    for (std::size_t bi = 0; bi < layout_.r; ++bi)
      for (std::size_t bj = 0; bj < layout_.r; ++bj)
        out.push_back({TileKey{static_cast<std::int32_t>(bi),
                               static_cast<std::int32_t>(bj)},
                       at(bi, bj)});
    return out;
  }

  /// Rebuild a grid from RDD output.
  static TileGrid from_entries(
      const BlockLayout& layout,
      const std::vector<std::pair<TileKey, TileRef<T>>>& entries) {
    TileGrid g;
    g.layout_ = layout;
    g.tiles_.resize(layout.num_tiles());
    for (const auto& [key, tile] : entries) {
      GS_CHECK_MSG(key.i >= 0 && key.j >= 0 &&
                       static_cast<std::size_t>(key.i) < layout.r &&
                       static_cast<std::size_t>(key.j) < layout.r,
                   "tile key out of range");
      auto& slot = g.tiles_[static_cast<std::size_t>(key.i) * layout.r +
                            static_cast<std::size_t>(key.j)];
      GS_CHECK_MSG(slot == nullptr, "duplicate tile key in entries");
      slot = tile;
    }
    for (const auto& t : g.tiles_) GS_CHECK_MSG(t != nullptr, "missing tile");
    return g;
  }

  /// Gather: reassemble the logical n×n matrix (drops padding).
  Matrix<T> gather() const {
    Matrix<T> m(layout_.n, layout_.n);
    const std::size_t b = layout_.block;
    for (std::size_t bi = 0; bi < layout_.r; ++bi) {
      for (std::size_t bj = 0; bj < layout_.r; ++bj) {
        const Tile<T>& t = *at(bi, bj);
        for (std::size_t i = 0; i < b; ++i) {
          const std::size_t gi = bi * b + i;
          if (gi >= layout_.n) break;
          for (std::size_t j = 0; j < b; ++j) {
            const std::size_t gj = bj * b + j;
            if (gj >= layout_.n) break;
            m(gi, gj) = t(i, j);
          }
        }
      }
    }
    return m;
  }

 private:
  BlockLayout layout_;
  std::vector<TileRef<T>> tiles_;
};

}  // namespace gs
