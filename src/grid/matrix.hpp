// matrix.hpp — simple dense row-major matrix used by reference solvers,
// workload generators, and as the gather target for TileGrid.
#pragma once

#include <cstddef>
#include <utility>

#include "support/buffer.hpp"
#include "support/span2d.hpp"

namespace gs {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), storage_(rows * cols) {}

  Matrix(std::size_t rows, std::size_t cols, const T& fill)
      : Matrix(rows, cols) {
    fill_span(span(), fill);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  T& operator()(std::size_t i, std::size_t j) {
    GS_DCHECK(i < rows_ && j < cols_);
    return storage_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    GS_DCHECK(i < rows_ && j < cols_);
    return storage_[i * cols_ + j];
  }

  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }

  Span2D<T> span() { return Span2D<T>(storage_.data(), rows_, cols_); }
  Span2D<const T> span() const {
    return Span2D<const T>(storage_.data(), rows_, cols_);
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a.storage_[i] != b.storage_[i]) return false;
    return true;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedBuffer<T> storage_;
};

/// Max |a-b| over all cells — used by tests comparing against references.
template <typename T>
double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  GS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double da = static_cast<double>(a(i, j));
      const double db = static_cast<double>(b(i, j));
      if (da == db) continue;  // handles matching infinities
      const double d = da > db ? da - db : db - da;
      if (d > worst) worst = d;
    }
  }
  return worst;
}

}  // namespace gs
