// nested_dataflow.hpp — tile-level dataflow scheduler for the nested
// workloads (GAP / accordion / Viterbi). Structurally a sibling of
// gepspark::DataflowEngine: one task graph per checkpoint segment through
// SparkContext::run_task_graph (per-attempt chaos, stragglers, kills,
// speculation), IM cross-executor edges mediated by modeled transfer tasks,
// CB charging per-wave driver collect/broadcast, per-wave fences anchoring
// the lookahead gate, carried tiles living as unpinned blocks in the
// executor store between segments, and checksummed checkpoint snapshots
// with corruption heal.
//
// The big structural difference from GEP: these wavefront schedules are
// SINGLE-ASSIGNMENT — every tile is written exactly once, at a statically
// known wave. There are no tile versions, no source nodes (wave-0 tasks have
// no reads; the recurrences are pure functions of the problem instance), and
// no stale outputs to truncate. Lineage recomputation recurses through the
// one producing task per tile and bottoms out at wave 0 or at a pinned
// checkpoint snapshot.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/hb_detector.hpp"
#include "analysis/model_check.hpp"
#include "gepspark/options.hpp"
#include "grid/matrix.hpp"
#include "nested/nested_plan.hpp"
#include "obs/span.hpp"
#include "sparklet/context.hpp"
#include "sparklet/item_codec.hpp"
#include "sparklet/partitioner.hpp"
#include "sparklet/storage_level.hpp"
#include "support/check.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace nested {

template <typename Plan>
class NestedEngine : public sparklet::BlockSource {
 public:
  NestedEngine(sparklet::SparkContext& sc, const gepspark::SolverOptions& opt,
               const Plan& plan, sparklet::PartitionerPtr part)
      : sc_(sc),
        opt_(opt),
        plan_(plan),
        part_(std::move(part)),
        store_rdd_(sc_.next_rdd_id()),
        cols_(plan.grid_cols()) {
    sc_.set_block_source(store_rdd_, this);
  }

  ~NestedEngine() override {
    sc_.clear_block_source(store_rdd_);  // also removes executor-store blocks
    sc_.shared_fs().remove_rdd_blocks(store_rdd_);
  }

  NestedEngine(const NestedEngine&) = delete;
  NestedEngine& operator=(const NestedEngine&) = delete;

  /// Test hook: mirror of DataflowEngine::set_graph_log.
  void set_graph_log(std::vector<std::vector<sparklet::DataflowTaskSpec>>* log) {
    graph_log_ = log;
  }

  /// Analysis hook (`--audit-recovery`): mirror of
  /// DataflowEngine::set_lineage_log — one snapshot per checkpoint segment.
  void set_lineage_log(std::vector<analysis::LineageSnapshot>* log) {
    lineage_log_ = log;
  }

  /// Run the full wavefront computation and assemble the result table.
  gs::Matrix<double> solve() {
    const int waves = plan_.waves();
    const int interval = opt_.checkpoint_interval;
    const int seg_len = interval > 0 ? interval : waves;
    int seg_index = 0;
    for (int s = 0; s < waves; s += seg_len, ++seg_index) {
      const int e = std::min(s + seg_len, waves);
      if (seg_index > 0) recover_carried(seg_index);
      run_segment(s, e);
      if (interval > 0 && e % interval == 0) {
        checkpoint_snapshot();
      } else {
        register_carried_blocks();
      }
      if (lineage_log_ != nullptr) log_lineage_snapshot(seg_index);
    }

    restore_all_outs();
    std::size_t total_bytes = 0;
    for (const Node& nd : nodes_) total_bytes += nd.bytes;
    sc_.charge_collect(total_bytes);  // gatherResult
    return plan_.assemble([&](gs::TileKey key) { return out_of(key); });
  }

 private:
  /// One tile plus its lineage: the single task that produces it.
  struct Node {
    NestedTask task;
    int wave = -1;
    std::vector<int> deps;  ///< producing node ids of task.reads
    TileR out;              ///< materialized tile; empty = lost, recomputable
    bool pinned = false;    ///< checkpoint snapshot — survives anything
    std::size_t bytes = 0;
    int executor = 0;
  };

  int node_id(gs::TileKey key) const { return node_of_.at(key); }

  TileR out_of(gs::TileKey key) const {
    const Node& nd = nodes_[static_cast<std::size_t>(node_id(key))];
    GS_CHECK_MSG(nd.out != nullptr, "nested tile missing");
    return nd.out;
  }

  int executor_of_key(gs::TileKey key) const {
    return sc_.executor_of(part_->partition_of(sparklet::key_hash(key)));
  }

  sparklet::BlockId block_id(gs::TileKey key) const {
    return {store_rdd_, key.i * cols_ + key.j};
  }

  gs::TileKey key_of_block(const sparklet::BlockId& id) const {
    return {id.partition / cols_, id.partition % cols_};
  }

  // --------------------- storage-tier block source ---------------------

  std::optional<std::vector<std::uint8_t>> encode_block(
      const sparklet::BlockId& id) const override {
    auto it = node_of_.find(key_of_block(id));
    if (it == node_of_.end()) return std::nullopt;
    const Node& nd = nodes_[static_cast<std::size_t>(it->second)];
    if (nd.out == nullptr) return std::nullopt;
    sparklet::ByteBuffer raw;
    sparklet::encode_item(raw, nd.out);
    return sparklet::pack_payload(std::move(raw));
  }

  bool restore_block(const sparklet::BlockId& id,
                     const std::vector<std::uint8_t>& payload) override {
    auto it = node_of_.find(key_of_block(id));
    if (it == node_of_.end()) return false;
    Node& nd = nodes_[static_cast<std::size_t>(it->second)];
    if (nd.out != nullptr) return true;  // idempotent (concurrent readback)
    auto raw = sparklet::unpack_payload(payload);
    if (!raw) return false;
    sparklet::DecodeCursor cur{raw->data(), raw->data() + raw->size()};
    TileR tile;
    if (!sparklet::decode_item(cur, tile) || cur.remaining() != 0) return false;
    nd.out = std::move(tile);
    return true;
  }

  void release_block(const sparklet::BlockId& id) override {
    auto it = node_of_.find(key_of_block(id));
    if (it == node_of_.end()) return;
    Node& nd = nodes_[static_cast<std::size_t>(it->second)];
    if (!nd.pinned) nd.out.reset();
  }

  // ------------------------- segment execution -------------------------

  void run_segment(int s, int e) {
    const int num_exec = sc_.config().num_executors();
    const bool im = opt_.strategy == gepspark::Strategy::kInMemory;

    std::vector<sparklet::DataflowTaskSpec> specs;
    std::vector<int> spec_node;  // node id per graph task, -1 for xfer/fence
    std::unordered_map<int, int> task_of_node;
    std::unordered_map<int, int> xfer_memo;  // producer*num_exec+dest → task
    std::vector<int> fences;  // fence task per wave offset (wv - s)
    std::size_t shuffle_bytes = 0;
    std::vector<std::size_t> wave_bytes(static_cast<std::size_t>(e - s), 0);
    std::vector<int> wave_tasks;

    // Route one data edge (producer node → consumer executor). Tiles carried
    // from earlier segments are already resident — no edge needed.
    auto route = [&](int nid, int consumer_exec, std::vector<int>& deps) {
      auto it = task_of_node.find(nid);
      if (it == task_of_node.end()) return;
      const int producer = it->second;
      if (!im || specs[static_cast<std::size_t>(producer)].executor ==
                     consumer_exec) {
        deps.push_back(producer);
        return;
      }
      const int memo_key = producer * num_exec + consumer_exec;
      auto mit = xfer_memo.find(memo_key);
      if (mit != xfer_memo.end()) {
        deps.push_back(mit->second);
        return;
      }
      const Node& src = nodes_[static_cast<std::size_t>(nid)];
      const std::size_t bytes = src.bytes;
      sparklet::DataflowTaskSpec t;
      t.label = "shuffleXfer";
      t.deps = {producer};
      t.executor = consumer_exec;
      t.category = sparklet::TimeCategory::kShuffle;
      t.transfer = true;
      t.gep_kind = 'X';
      t.gep_k = src.wave;
      t.tile_i = src.task.out.i;
      t.tile_j = src.task.out.j;
      t.model_s = sc_.config().network.latency_s +
                  static_cast<double>(bytes) /
                      sc_.config().network.bandwidth_Bps;
      shuffle_bytes += bytes;
      specs.push_back(std::move(t));
      spec_node.push_back(-1);
      const int idx = static_cast<int>(specs.size() - 1);
      wave_tasks.push_back(idx);
      xfer_memo.emplace(memo_key, idx);
      deps.push_back(idx);
    };

    for (int wv = s; wv < e; ++wv) {
      wave_tasks.clear();
      for (const auto& phase : plan_.wave_phases(wv)) {
        for (const NestedTask& task : phase) {
          Node nd;
          nd.task = task;
          nd.wave = wv;
          nd.bytes = plan_.tile_bytes(task.out);
          nd.executor = executor_of_key(task.out);
          nd.deps.reserve(task.reads.size());
          for (const gs::TileKey& rd : task.reads) {
            nd.deps.push_back(node_id(rd));
          }
          const int nid = add_node(std::move(nd));
          node_of_.emplace(task.out, nid);
          wave_bytes[static_cast<std::size_t>(wv - s)] +=
              nodes_[static_cast<std::size_t>(nid)].bytes;

          const Node& added = nodes_[static_cast<std::size_t>(nid)];
          sparklet::DataflowTaskSpec t;
          t.label = gs::strfmt("%sWave", Plan::name());
          t.executor = added.executor;
          t.gep_kind = task.kind;
          t.gep_k = wv;
          t.tile_i = task.out.i;
          t.tile_j = task.out.j;
          for (int dep : added.deps) route(dep, added.executor, t.deps);
          // Wavefront lookahead: wave wv may not start before the fence of
          // wave wv - lookahead - 1 (when that fence is in this segment).
          const int gate = wv - opt_.effective_lookahead() - 1;
          if (gate >= s) {
            t.deps.push_back(fences[static_cast<std::size_t>(gate - s)]);
          }
          specs.push_back(std::move(t));
          spec_node.push_back(nid);
          const int idx = static_cast<int>(specs.size() - 1);
          task_of_node.emplace(nid, idx);
          wave_tasks.push_back(idx);
        }
      }

      // Zero-cost fence summarizing wave wv, the lookahead anchor.
      sparklet::DataflowTaskSpec f;
      f.label = "fence";
      f.deps = wave_tasks;
      f.transfer = true;  // exempt from chaos/metrics, zero modeled cost
      f.gep_kind = 'F';
      f.gep_k = wv;
      specs.push_back(std::move(f));
      spec_node.push_back(-1);
      fences.push_back(static_cast<int>(specs.size() - 1));
    }

    obs::Tracer* tr = &sc_.tracer();
    auto body = [&](int ti) {
      const int nid = spec_node[static_cast<std::size_t>(ti)];
      if (nid < 0) return;  // transfer or fence
      Node& nd = nodes_[static_cast<std::size_t>(nid)];
      obs::ScopedSpan kernel_span(tr, obs::SpanLevel::kKernel,
                                  std::string(1, nd.task.kind).c_str(),
                                  nd.wave);
      run_node(nd, nid);
    };
    if (graph_log_ != nullptr) graph_log_->push_back(specs);
    sc_.run_task_graph(
        gs::strfmt("nested-%s(w=%d..%d)", Plan::name(), s, e - 1), specs, body,
        im ? shuffle_bytes : 0);

    if (!im) {
      // CB ships each wave's outputs through the driver: collect + broadcast
      // per wave, exactly like the barrier CB loop it replaces.
      for (int wv = s; wv < e; ++wv) {
        const std::size_t wb = wave_bytes[static_cast<std::size_t>(wv - s)];
        if (wb > 0) {
          sc_.charge_collect(wb);
          sc_.charge_broadcast(wb);
        }
      }
    }
  }

  int add_node(Node nd) {
    nodes_.push_back(std::move(nd));
    return static_cast<int>(nodes_.size() - 1);
  }

  /// Execute one node's kernel with race-detector footprints.
  void run_node(Node& nd, int nid) {
    if (analysis::HbDetector* det = sc_.race_detector()) {
      for (int dep : nd.deps) {
        det->on_read(analysis::HbDetector::tile_location(store_rdd_, dep),
                     "tile");
      }
    }
    nd.out = plan_.compute(
        nd.task, [&](gs::TileKey key) { return out_of(key); });
    if (analysis::HbDetector* det = sc_.race_detector()) {
      det->on_write(analysis::HbDetector::tile_location(store_rdd_, nid),
                    "tile");
    }
  }

  // ------------------------- recovery & snapshots -------------------------

  /// Segment entry: chaos may have lost carried tiles since the last graph
  /// ran. Anything missing is recomputed through the per-tile lineage.
  void recover_carried(int seg_index) {
    const sparklet::ChaosPlan& chaos = sc_.chaos_plan();
    std::vector<int> unpinned;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i].pinned) unpinned.push_back(static_cast<int>(i));
    }
    if (chaos.fetch_failure_prob > 0.0 && !unpinned.empty()) {
      gs::Rng rng(sparklet::chaos_event_seed(
          chaos.seed, sparklet::kChaosFetch,
          static_cast<std::uint64_t>(store_rdd_),
          static_cast<std::uint64_t>(seg_index), 0));
      if (rng.bernoulli(chaos.fetch_failure_prob)) {
        Node& nd = nodes_[static_cast<std::size_t>(
            unpinned[rng.uniform_u64(unpinned.size())])];
        nd.out.reset();
        sc_.executor_store().remove_block(block_id(nd.task.out));
        sc_.metrics().note_fetch_failure();
        sc_.metrics().note_partitions_dropped(1);
        sc_.timeline().add_marker("fetch-failure");
        sc_.timeline().add_serial("stage-retry-backoff",
                                  sc_.config().stage_overhead_s,
                                  sparklet::TimeCategory::kRecovery);
      }
    }
    for (int id : unpinned) {
      Node& nd = nodes_[static_cast<std::size_t>(id)];
      if (nd.out != nullptr &&
          !sc_.executor_store().has_block(block_id(nd.task.out))) {
        nd.out.reset();  // lost to a kill or an eviction
        sc_.metrics().note_partitions_dropped(1);
      }
    }
    restore_all_outs();
  }

  /// Bring every tile back in memory: readback first (a demoted copy on the
  /// serialized or disk tier restores it without touching lineage),
  /// recomputation for anything genuinely lost.
  void restore_all_outs() {
    gs::Stopwatch sw;
    int recomputed = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].out == nullptr) {
        sc_.try_block_readback(block_id(nodes_[i].task.out));
      }
      recomputed += recompute_now(static_cast<int>(i));
    }
    sc_.flush_storage_charges();
    if (recomputed > 0) {
      sc_.metrics().note_partitions_recomputed(recomputed);
      sc_.timeline().add_serial(
          "recompute",
          sw.seconds() + recomputed * sc_.config().task_overhead_s,
          sparklet::TimeCategory::kRecovery);
    }
  }

  /// Re-run the pure kernel chain for a lost tile. Inputs recurse; the chain
  /// bottoms out at wave-0 tasks (no reads — the recurrence seeds itself
  /// from the problem instance) or pinned snapshots. Purity ⇒ bit-identical.
  int recompute_now(int id) {
    Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.out != nullptr) return 0;
    int count = 0;
    for (int dep : nd.deps) count += recompute_now(dep);
    if (analysis::HbDetector* det = sc_.race_detector()) {
      // Driver-side lineage recomputation between graphs, current driver era.
      for (int dep : nd.deps) {
        det->on_read(analysis::HbDetector::tile_location(store_rdd_, dep),
                     "tile");
      }
    }
    nd.out = plan_.compute(
        nd.task, [&](gs::TileKey key) { return out_of(key); });
    if (analysis::HbDetector* det = sc_.race_detector()) {
      det->on_write(analysis::HbDetector::tile_location(store_rdd_, id),
                    "tile");
    }
    return count + 1;
  }

  /// Non-checkpoint segment boundary: every computed tile becomes an
  /// unpinned cached block in the executor store, giving kills and memory
  /// pressure something concrete to lose.
  void register_carried_blocks() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& nd = nodes_[i];
      if (nd.pinned) continue;
      try {
        sc_.executor_store().put_block(nd.executor, block_id(nd.task.out),
                                       nd.bytes, /*checksum=*/0,
                                       /*pinned=*/false, opt_.storage_level);
      } catch (const gs::CapacityError&) {
        // Executor memory full even after demotion: the tile goes untracked
        // and will be recomputed next segment (graceful degradation).
      }
    }
    sc_.flush_storage_charges();
  }

  /// Checkpoint boundary: write every tile checksummed + pinned into the
  /// shared store, healing injected corruption through lineage, then make
  /// the snapshot the new recomputation floor.
  void checkpoint_snapshot() {
    obs::ScopedSpan span(&sc_.tracer(), obs::SpanLevel::kStage, "checkpoint",
                         store_rdd_);
    const sparklet::ChaosPlan& chaos = sc_.chaos_plan();
    const int max_attempts = std::max(1, chaos.max_stage_attempts);
    double io_s = 0.0;
    int recomputed = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const int id = static_cast<int>(i);
      Node& nd = nodes_[i];
      if (nd.pinned) continue;  // already snapshotted
      const sparklet::BlockId bid = block_id(nd.task.out);
      std::uint64_t sum_state = static_cast<std::uint64_t>(id) ^
                                (static_cast<std::uint64_t>(store_rdd_) << 32);
      const std::uint64_t sum = gs::splitmix64(sum_state);
      for (int attempt = 1;; ++attempt) {
        std::uint64_t stored = sum;
        if (sc_.chaos_corrupt_block(static_cast<std::uint64_t>(store_rdd_),
                                    static_cast<std::uint64_t>(bid.partition),
                                    static_cast<std::uint64_t>(attempt))) {
          stored ^= 0xbad0bad0bad0bad0ULL;
        }
        io_s += sc_.shared_fs().put_block(0, bid, nd.bytes, stored,
                                          /*pinned=*/true);
        io_s += sc_.shared_fs().read(0, nd.bytes);  // verification read-back
        if (sc_.shared_fs().verify_block(bid, sum)) {
          sc_.metrics().note_checkpoint_block(nd.bytes);
          break;
        }
        sc_.metrics().note_corrupted_block();
        sc_.timeline().add_marker("checkpoint-corruption");
        sc_.shared_fs().remove_block(bid);
        GS_THROW_IF(attempt >= max_attempts, gs::JobAbortedError,
                    gs::strfmt("checkpoint block (%d,%d) failed "
                               "verification %d times",
                               store_rdd_, bid.partition, attempt));
        nd.out.reset();
        sc_.metrics().note_partitions_dropped(1);
        recomputed += recompute_now(id);
      }
      nd.pinned = true;
    }
    sc_.timeline().add_serial("checkpoint", io_s,
                              sparklet::TimeCategory::kRecovery);
    if (recomputed > 0) sc_.metrics().note_partitions_recomputed(recomputed);
    sc_.executor_store().remove_rdd_blocks(store_rdd_);
  }

  /// Serialize the node table for the recovery-closure auditor. Wave-0
  /// tasks have no reads — the recurrence seeds itself from the problem
  /// instance — so they are the closure's sources; every node is live (the
  /// schedule is single-assignment, nothing is superseded).
  void log_lineage_snapshot(int seg_index) {
    analysis::LineageSnapshot snap;
    snap.segment = seg_index;
    snap.nodes.reserve(nodes_.size());
    snap.live.reserve(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& nd = nodes_[i];
      analysis::LineageRecord rec;
      rec.label = gs::strfmt("%c(%d,%d)@w=%d", nd.task.kind, nd.task.out.i,
                             nd.task.out.j, nd.wave);
      rec.k = nd.wave;
      rec.pinned = nd.pinned;
      rec.source = nd.deps.empty();
      rec.deps = nd.deps;
      snap.nodes.push_back(std::move(rec));
      snap.live.push_back(static_cast<int>(i));
    }
    lineage_log_->push_back(std::move(snap));
  }

  sparklet::SparkContext& sc_;
  const gepspark::SolverOptions& opt_;
  const Plan& plan_;
  sparklet::PartitionerPtr part_;
  const int store_rdd_;  ///< block/chaos namespace for this engine
  const int cols_;

  std::vector<Node> nodes_;
  std::unordered_map<gs::TileKey, int, gs::TileKeyHash> node_of_;
  std::vector<std::vector<sparklet::DataflowTaskSpec>>* graph_log_ = nullptr;
  std::vector<analysis::LineageSnapshot>* lineage_log_ = nullptr;
};

}  // namespace nested
