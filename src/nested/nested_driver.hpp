// nested_driver.hpp — unified solve entry point for the nested-dataflow
// workloads, mirroring GepDriver's surface: one call returns
// SolveOutcome{matrix, profile, stats} and honours SolverOptions' strategy
// (IM / CB), schedule (barrier / dataflow), storage level, checkpoint
// interval, lookahead, and --validate-schedule.
//
// Barrier IM (Listing 1 shape): each wave phase fans a copy of every needed
// finished tile to its consumer tasks through a shuffle (flatMap +
// combineByKey keyed by the consumer tile), so the wide-dependency wavefront
// runs with Spark's shuffle machinery. Sentinel seeds guarantee a group for
// zero-read tasks (wave 0).
//
// Barrier CB (Listing 2 shape): finished tiles are collect()ed to the driver
// and re-broadcast each phase — the accordion's same-wave diagonal→panel
// ordering falls out of phases being separate collect rounds.
//
// Dataflow: NestedEngine builds the per-segment task DAG (fences, lookahead,
// transfer tasks, checkpoint snapshots) — see nested_dataflow.hpp.
//
// All three paths run plan.compute() — the same pure per-cell recurrence —
// on the same tile inputs, so results are bit-identical across every mode.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/hb_detector.hpp"
#include "analysis/model_check.hpp"
#include "analysis/schedule_check.hpp"
#include "gepspark/options.hpp"
#include "grid/matrix.hpp"
#include "nested/nested_dataflow.hpp"
#include "nested/nested_plan.hpp"
#include "obs/span.hpp"
#include "sparklet/rdd.hpp"
#include "support/check.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"

namespace nested {

inline const char* kind_cstr(char k) {
  switch (k) {
    case 'G': return "G";
    case 'E': return "E";
    case 'P': return "P";
    case 'V': return "V";
  }
  return "?";
}

namespace detail {

using DoneMap = std::unordered_map<gs::TileKey, TileR, gs::TileKeyHash>;

/// Collect-Broadcast barrier: per phase, broadcast every finished tile,
/// compute the phase's tasks against the broadcast map, collect, merge.
template <typename Plan>
gs::Matrix<double> solve_cb(sparklet::SparkContext& sc, const Plan& plan,
                            const gepspark::SolverOptions& opt,
                            const sparklet::PartitionerPtr& part) {
  (void)opt;
  obs::Tracer* tr = &sc.tracer();
  DoneMap done;
  const int waves = plan.waves();
  for (int wv = 0; wv < waves; ++wv) {
    obs::ScopedSpan iter_span(tr, obs::SpanLevel::kIteration, "wave", wv);
    for (const auto& phase : plan.wave_phases(wv)) {
      auto done_bc = sc.broadcast(done);  // "tofile()"
      auto tasks = std::make_shared<const std::vector<NestedTask>>(phase);
      std::vector<std::pair<gs::TileKey, int>> keyed;
      keyed.reserve(phase.size());
      for (int t = 0; t < static_cast<int>(phase.size()); ++t) {
        keyed.push_back({phase[static_cast<std::size_t>(t)].out, t});
      }
      auto entries =
          sparklet::parallelize_pairs(sc, keyed, part, "nestedPhase")
              .map(
                  [plan, tasks, done_bc, tr,
                   wv](const std::pair<gs::TileKey, int>& kv) {
                    const NestedTask& task =
                        (*tasks)[static_cast<std::size_t>(kv.second)];
                    obs::ScopedSpan kernel_span(tr, obs::SpanLevel::kKernel,
                                                kind_cstr(task.kind), wv);
                    const DoneMap& prev = done_bc.value();
                    TileR out = plan.compute(task, [&](gs::TileKey key) {
                      return prev.at(key);
                    });
                    return std::pair<gs::TileKey, TileR>{kv.first,
                                                         std::move(out)};
                  },
                  "nestedWaveKernel")
              .collect("nestedCollectWave");
      for (auto& [key, tile] : entries) done.emplace(key, std::move(tile));
    }
  }
  return plan.assemble([&](gs::TileKey key) { return done.at(key); });
}

/// In-Memory barrier: per phase, fan a tagged copy of each finished tile to
/// every consumer task through the shuffle, group by consumer, compute.
template <typename Plan>
gs::Matrix<double> solve_im(sparklet::SparkContext& sc, const Plan& plan,
                            const gepspark::SolverOptions& opt,
                            const sparklet::PartitionerPtr& part) {
  using KV = std::pair<gs::TileKey, TileR>;
  using SrcKV = std::pair<gs::TileKey, TileR>;  // (source key, tile | sentinel)
  using FanKV = std::pair<gs::TileKey, SrcKV>;  // keyed by consumer tile
  obs::Tracer* tr = &sc.tracer();
  auto done =
      sparklet::parallelize_pairs(sc, std::vector<KV>{}, part, "nestedDP");
  const int waves = plan.waves();
  for (int wv = 0; wv < waves; ++wv) {
    obs::ScopedSpan iter_span(tr, obs::SpanLevel::kIteration, "wave", wv);
    for (const auto& phase : plan.wave_phases(wv)) {
      auto task_map = std::make_shared<
          const std::unordered_map<gs::TileKey, NestedTask, gs::TileKeyHash>>(
          [&] {
            std::unordered_map<gs::TileKey, NestedTask, gs::TileKeyHash> m;
            for (const auto& t : phase) m.emplace(t.out, t);
            return m;
          }());
      auto consumers = std::make_shared<const std::unordered_map<
          gs::TileKey, std::vector<gs::TileKey>, gs::TileKeyHash>>([&] {
        std::unordered_map<gs::TileKey, std::vector<gs::TileKey>,
                           gs::TileKeyHash>
            c;
        for (const auto& t : phase) {
          for (const auto& rd : t.reads) c[rd].push_back(t.out);
        }
        return c;
      }());

      // Every finished tile ships one copy per consumer task — the wide
      // wavefront dependency as an actual shuffle.
      auto fan = done.flat_map(
          [consumers](const KV& kv) {
            std::vector<FanKV> out;
            auto it = consumers->find(kv.first);
            if (it != consumers->end()) {
              out.reserve(it->second.size());
              for (const auto& dst : it->second) {
                out.push_back({dst, SrcKV{kv.first, kv.second}});
              }
            }
            return out;
          },
          "nestedFanOut");
      // Sentinel seeds guarantee a group exists even for zero-read tasks.
      std::vector<FanKV> seeds;
      seeds.reserve(phase.size());
      for (const auto& t : phase) seeds.push_back({t.out, SrcKV{t.out, nullptr}});
      auto computed =
          sparklet::parallelize_pairs(sc, seeds, part, "nestedSeeds")
              .union_with(fan, "nestedGather")
              .group_by_key(part, "combineByKeyNested")
              .map(
                  [plan, task_map, tr, wv](
                      const std::pair<gs::TileKey, std::vector<SrcKV>>& kv) {
                    DoneMap inputs;
                    for (const auto& src : kv.second) {
                      if (src.second != nullptr) {
                        inputs.emplace(src.first, src.second);
                      }
                    }
                    const NestedTask& task = task_map->at(kv.first);
                    obs::ScopedSpan kernel_span(tr, obs::SpanLevel::kKernel,
                                                kind_cstr(task.kind), wv);
                    TileR out = plan.compute(task, [&](gs::TileKey key) {
                      return inputs.at(key);
                    });
                    return KV{kv.first, std::move(out)};
                  },
                  "nestedWaveKernel");
      done = done.union_with(computed, "unionWave")
                 .partition_by(part, "repartition");
    }
    // End-of-wave persistence, exactly like the GEP barrier loop.
    obs::ScopedSpan persist_span(tr, obs::SpanLevel::kPhase, "persist", wv);
    done.node()->set_storage_level(opt.storage_level);
    const int interval = opt.checkpoint_interval;
    if (interval > 0 && (wv + 1) % interval == 0) {
      done.checkpoint();
    } else {
      done.cache();
    }
  }
  auto entries = done.collect("gatherResult");
  DoneMap all;
  all.reserve(entries.size());
  for (auto& [key, tile] : entries) all.emplace(key, std::move(tile));
  return plan.assemble([&](gs::TileKey key) { return all.at(key); });
}

}  // namespace detail

/// Solve a nested workload under the configured strategy and schedule.
template <typename Plan>
gepspark::SolveOutcome<double> nested_solve(
    sparklet::SparkContext& sc, const Plan& plan,
    const gepspark::SolverOptions& opt) {
  opt.validate();
  GS_THROW_IF(opt.fused_d, gs::ConfigError,
              "fused_d applies only to GEP-shaped workloads (the nested "
              "wavefronts have no D phase to batch)");
  GS_THROW_IF(opt.track_predecessors, gs::ConfigError,
              "track_predecessors applies only to the FW spec");

  const int num_parts =
      opt.num_partitions > 0
          ? opt.num_partitions
          : static_cast<int>(sc.config().effective_partitions());
  sparklet::PartitionerPtr part;
  if (opt.use_grid_partitioner) {
    part = std::make_shared<sparklet::GridPartitioner>(num_parts,
                                                       plan.grid_cols());
  } else {
    part = std::make_shared<sparklet::HashPartitioner>(num_parts);
  }

  const std::string job_name =
      gs::strfmt("%s %s", Plan::name(), opt.describe().c_str());
  sparklet::MetricsScope scope(sc.metrics(), sc.timeline());
  gs::Stopwatch wall;
  gepspark::SolveOutcome<double> outcome;
  {
    obs::ScopedSpan job_span(&sc.tracer(), obs::SpanLevel::kJob, job_name);
    if (opt.schedule == gepspark::ScheduleMode::kDataflow) {
      NestedEngine<Plan> engine(sc, opt, plan, part);
      std::vector<std::vector<sparklet::DataflowTaskSpec>> graph_log;
      if (opt.validate_schedule) engine.set_graph_log(&graph_log);
      std::vector<analysis::LineageSnapshot> lineage_log;
      if (opt.audit_recovery) engine.set_lineage_log(&lineage_log);
      outcome.matrix = engine.solve();
      if (opt.audit_recovery) {
        const analysis::RecoveryAuditReport audit =
            analysis::audit_recovery_closure(lineage_log);
        GS_THROW_IF(!audit.ok(), analysis::RecoveryAuditError,
                    audit.summary());
      }
      if (opt.validate_schedule) {
        analysis::ScheduleCheckOptions copt;
        copt.lookahead = opt.effective_lookahead();
        copt.in_memory = opt.strategy == gepspark::Strategy::kInMemory;
        copt.checkpoint_interval = opt.checkpoint_interval;
        const analysis::ScheduleCheckReport check_report =
            analysis::check_dataflow_schedule(plan.workload(), copt,
                                              graph_log);
        GS_THROW_IF(!check_report.ok(), analysis::ScheduleViolationError,
                    check_report.summary());
      }
    } else if (opt.strategy == gepspark::Strategy::kInMemory) {
      outcome.matrix = detail::solve_im(sc, plan, opt, part);
    } else {
      outcome.matrix = detail::solve_cb(sc, plan, opt, part);
    }
  }
  outcome.profile =
      obs::build_job_profile(scope.delta(), sc.timeline(), &sc.tracer());
  outcome.profile.job = job_name;
  outcome.profile.wall_seconds = wall.seconds();
  outcome.profile.grid_r = plan.grid_cols();
  outcome.stats = gepspark::to_solve_stats(outcome.profile);
  return outcome;
}

/// Model-check a nested plan's dataflow schedule (`--model-check`): the
/// nested counterpart of gepspark::model_check_gep. Each explored
/// interleaving replays a full serial solve with schedule validation on and
/// a fresh race detector, and must produce a bit-identical table.
template <typename Plan>
analysis::ModelCheckReport model_check_nested(
    sparklet::SparkContext& sc, const Plan& plan,
    const gepspark::SolverOptions& opt,
    const analysis::ModelCheckOptions& mc = analysis::ModelCheckOptions{}) {
  gepspark::SolverOptions run_opt = opt;
  run_opt.schedule = gepspark::ScheduleMode::kDataflow;
  run_opt.validate_schedule = true;
  run_opt.model_check = 0;
  run_opt.audit_recovery = false;
  analysis::ModelChecker checker;
  return checker.explore(
      [&sc, &plan, &run_opt](analysis::ReplayHook& hook) {
        analysis::HbDetector detector;
        analysis::RunObservation obs;
        {
          analysis::ReplayScope scope(sc, hook, detector);
          obs.digest =
              analysis::digest_matrix(nested_solve(sc, plan, run_opt).matrix);
        }
        if (detector.races_found() > 0) {
          obs.checks_ok = false;
          obs.detail = detector.summary();
        }
        return obs;
      },
      mc);
}

}  // namespace nested
