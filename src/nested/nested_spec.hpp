// nested_spec.hpp — problem instances for the nested-dataflow workloads:
// the GAP problem, protein accordion folding, and Viterbi decoding (Yuan
// Tang's "Nested Dataflow Algorithms for DP Recurrences with more than O(1)
// Dependency"). Unlike the GEP family, every cell of these tables reads a
// non-constant number of earlier cells (a row sweep, a column sweep, or a
// full previous-row fan-in), so their tile schedules are wavefronts with
// O(r) tile fan-in rather than pivot-mediated A/B/C/D phases.
//
// Each instance is defined by PURE seeded index functions (splitmix-derived
// noise), not stored arrays: padded tiles can evaluate the recurrence at any
// index without clamping, replays after chaos recovery see the same values,
// and every execution mode — serial reference, barrier IM/CB drivers, the
// nested dataflow engine — evaluates the exact same scalar expression chain
// per cell. min/max are exact selections over identical candidate values, so
// all modes are bit-identical by construction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "support/rng.hpp"

namespace nested {

/// Deterministic noise in [0, 1): pure in (seed, a, b).
inline double unit_noise(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xc2b2ae3d27d4eb4fULL);
  gs::splitmix64(s);  // extra round: avalanche the structured inputs
  const std::uint64_t x = gs::splitmix64(s);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// ---------------------------------------------------------------- GAP

/// The GAP problem (sequence alignment with concave gap penalties):
///
///   G(0,0) = 0
///   G(i,j) = min( G(i-1,j-1) + s(i,j),
///                 min_{0<=q<j} G(i,q) + w(q,j),      // gap in x ending at j
///                 min_{0<=p<i} G(p,j) + w'(p,i) )    // gap in y ending at i
///
/// over the (n+1)×(n+1) table. The q/p sweeps make every cell read a whole
/// table row prefix and column prefix — the canonical non-O(1) dependency.
struct GapProblem {
  std::size_t n = 0;  ///< sequence length; DP table is (n+1)×(n+1)
  std::uint64_t seed = 1;

  std::size_t table_n() const { return n + 1; }

  /// Substitution cost for matching x_i against y_j, in [0, 4).
  double match_cost(std::size_t i, std::size_t j) const {
    return 4.0 * unit_noise(seed ^ 0xa11cell, i, j);
  }
  /// Concave cost of a gap in x spanning columns (q, j].
  double gap_row(std::size_t q, std::size_t j) const {
    return 1.0 + 0.5 * std::sqrt(static_cast<double>(j - q));
  }
  /// Concave cost of a gap in y spanning rows (p, i].
  double gap_col(std::size_t p, std::size_t i) const {
    return 1.25 + 0.4 * std::sqrt(static_cast<double>(i - p));
  }
};

/// One GAP cell from a value lookup `at(i, j)`. The single shared expression
/// chain every execution mode runs: min is an exact selection, each candidate
/// is one addition of an earlier cell and a pure weight, so any evaluation
/// order over the same candidate set is bit-identical.
template <typename At>
double gap_cell(const GapProblem& p, std::size_t i, std::size_t j,
                const At& at) {
  if (i == 0 && j == 0) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  if (i > 0 && j > 0) best = std::min(best, at(i - 1, j - 1) + p.match_cost(i, j));
  for (std::size_t q = 0; q < j; ++q) {
    best = std::min(best, at(i, q) + p.gap_row(q, j));
  }
  for (std::size_t q = 0; q < i; ++q) {
    best = std::min(best, at(q, j) + p.gap_col(q, i));
  }
  return best;
}

// ---------------------------------------------------- accordion folding

/// Protein accordion folding: fold scores over the strict lower triangle,
///
///   S(i,j) = Phi(i,j) + max(0, max_{0<=k<j-1} S(j-1,k))   for 0 <= j < i < n
///
/// where Phi is the seeded contact-score matrix. A cell's fan-in is the whole
/// prefix of row j-1 — a row sweep whose source row is chosen by the cell's
/// *column*, which is what makes the tile schedule a column wavefront with a
/// same-wave diagonal→panel phase ordering.
struct AccordionProblem {
  std::size_t n = 0;  ///< chain length; table is n×n, strict lower triangle
  std::uint64_t seed = 1;

  /// Contact score in [-1, 2): negative scores make the max(0, ·) clamp real.
  double contact(std::size_t i, std::size_t j) const {
    return 3.0 * unit_noise(seed ^ 0xacc0fd10ull, i, j) - 1.0;
  }
};

/// One accordion cell (valid for j < i) from a value lookup `at(i, j)`.
template <typename At>
double accordion_cell(const AccordionProblem& p, std::size_t i, std::size_t j,
                      const At& at) {
  double carry = 0.0;  // max(0, ...) — empty sweep (j < 2) keeps the 0
  for (std::size_t k = 0; k + 1 < j; ++k) {
    carry = std::max(carry, at(j - 1, k));
  }
  return p.contact(i, j) + carry;
}

/// The folding optimum: best score over all valid cells (0 for n <= 1).
template <typename M>
double accordion_best(const M& table, std::size_t n) {
  double best = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) best = std::max(best, table(i, j));
  }
  return best;
}

// ------------------------------------------------------------- Viterbi

/// Viterbi decoding over a seeded HMM in log space:
///
///   d(0,s) = log pi(s) + log b(s, o_0)
///   d(t,s) = max_q [ d(t-1,q) + log a(q,s) ] + log b(s, o_t)
///
/// Every state of step t reads EVERY state of step t-1 — a full-row fan-in,
/// the column-sweep shape. The trellis is (horizon+1) rows × num_states.
struct ViterbiProblem {
  std::size_t num_states = 0;
  std::size_t horizon = 0;  ///< observations t = 0..horizon
  std::size_t num_symbols = 8;
  std::uint64_t seed = 1;

  std::size_t rows() const { return horizon + 1; }

  std::size_t observation(std::size_t t) const {
    return static_cast<std::size_t>(
        unit_noise(seed ^ 0x0b5e55ull, t, 0) *
        static_cast<double>(num_symbols));
  }
  double log_pi(std::size_t s) const {
    return -3.0 + 2.0 * unit_noise(seed ^ 0x9100ull, s, 0);
  }
  double log_trans(std::size_t q, std::size_t s) const {
    return -4.0 + 3.0 * unit_noise(seed ^ 0x74a5ull, q, s);
  }
  double log_emit_sym(std::size_t s, std::size_t sym) const {
    return -4.0 + 3.0 * unit_noise(seed ^ 0xe017ull, s, sym);
  }
  double log_emit(std::size_t s, std::size_t t) const {
    return log_emit_sym(s, observation(t));
  }
};

/// One Viterbi cell from a value lookup `at(t, q)` over the previous row.
template <typename At>
double viterbi_cell(const ViterbiProblem& p, std::size_t t, std::size_t s,
                    const At& at) {
  if (t == 0) return p.log_pi(s) + p.log_emit(s, 0);
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t q = 0; q < p.num_states; ++q) {
    best = std::max(best, at(t - 1, q) + p.log_trans(q, s));
  }
  return best + p.log_emit(s, t);
}

}  // namespace nested
