// nested_plan.hpp — tile schedules for the nested-dataflow workloads. A plan
// turns a problem instance into a wavefront schedule: `wave_phases(wv)` lists
// the tile tasks of wave `wv` grouped into phases that must run in order
// (the accordion's diagonal→panel split; the other shapes have one phase per
// wave), with each task naming its exact cross-tile read set. The SAME
// tile-level footprint formulas live in ScheduleChecker's symbolic
// enumeration — the checker re-derives them independently from
// `plan.workload()`, so an engine that drops an edge cannot hide.
//
// Plans are cheap to copy (a problem struct + block size) and are the single
// source of truth for all three execution modes: the barrier IM/CB drivers
// and the NestedEngine all execute plan.compute() over plan.wave_phases().
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "analysis/schedule_check.hpp"
#include "grid/matrix.hpp"
#include "nested/nested_kernels.hpp"
#include "support/check.hpp"

namespace nested {

/// One tile task of a wavefront schedule: kernel kind, output tile, and the
/// finished tiles it reads (grid keys; exact, not a superset of what the
/// kernel may touch).
struct NestedTask {
  char kind = '?';
  gs::TileKey out{0, 0};
  std::vector<gs::TileKey> reads;
};

/// Phases of one wave, in execution order. Tasks within a phase are
/// independent; a later phase may read outputs of an earlier one.
using WavePhases = std::vector<std::vector<NestedTask>>;

namespace detail {
inline int tiles_for(std::size_t n, std::size_t block) {
  GS_THROW_IF(block == 0, gs::ConfigError, "block_size must be > 0");
  return static_cast<int>((n + block - 1) / block);
}
}  // namespace detail

// ---------------------------------------------------------------- GAP

/// GAP: r×r grid over the padded (n+1)×(n+1) table, anti-diagonal wavefront
/// of 2r-1 waves; tile (bi,bj) runs at wave bi+bj.
class GapPlan {
 public:
  using value_type = double;

  GapPlan(const GapProblem& prob, std::size_t block)
      : prob_(prob), b_(block), r_(detail::tiles_for(prob.table_n(), block)) {}

  static const char* name() { return "gap"; }
  int grid_rows() const { return r_; }
  int grid_cols() const { return r_; }
  int waves() const { return 2 * r_ - 1; }
  std::size_t block() const { return b_; }
  const GapProblem& problem() const { return prob_; }
  std::size_t tile_bytes(gs::TileKey) const {
    return b_ * b_ * sizeof(double) + 64;
  }
  analysis::ScheduleWorkload workload() const {
    return analysis::make_gap_workload(r_);
  }

  WavePhases wave_phases(int wv) const {
    std::vector<NestedTask> tasks;
    const int lo = std::max(0, wv - (r_ - 1));
    const int hi = std::min(wv, r_ - 1);
    for (int bi = lo; bi <= hi; ++bi) {
      const int bj = wv - bi;
      NestedTask t{'G', gs::TileKey{bi, bj}, {}};
      for (int q = 0; q < bj; ++q) t.reads.push_back({bi, q});
      for (int p = 0; p < bi; ++p) t.reads.push_back({p, bj});
      if (bi > 0 && bj > 0) t.reads.push_back({bi - 1, bj - 1});
      tasks.push_back(std::move(t));
    }
    return {std::move(tasks)};
  }

  TileR compute(const NestedTask& t, const TileLookup& at) const {
    return gap_tile_kernel(prob_, b_, t.out, at);
  }

  gs::Matrix<double> assemble(const TileLookup& at) const {
    const std::size_t N = prob_.table_n();
    gs::Matrix<double> m(N, N, 0.0);
    for (int bi = 0; bi < r_; ++bi) {
      for (int bj = 0; bj < r_; ++bj) {
        copy_real_cells(m, *at({bi, bj}), bi, bj, b_);
      }
    }
    return m;
  }

 private:
  static void copy_real_cells(gs::Matrix<double>& m, const gs::Tile<double>& t,
                              int bi, int bj, std::size_t b) {
    const std::size_t row0 = static_cast<std::size_t>(bi) * b;
    const std::size_t col0 = static_cast<std::size_t>(bj) * b;
    for (std::size_t i = 0; i < b && row0 + i < m.rows(); ++i) {
      for (std::size_t j = 0; j < b && col0 + j < m.cols(); ++j) {
        m(row0 + i, col0 + j) = t(i, j);
      }
    }
  }

  GapProblem prob_;
  std::size_t b_;
  int r_;
};

// ---------------------------------------------------- accordion folding

/// Accordion folding: lower-triangular r×r grid over the n×n table, column
/// wavefront of r waves; wave bj runs the diagonal tile (bj,bj) first, then
/// the panels (bi,bj) below it.
class AccordionPlan {
 public:
  using value_type = double;

  AccordionPlan(const AccordionProblem& prob, std::size_t block)
      : prob_(prob), b_(block), r_(detail::tiles_for(prob.n, block)) {}

  static const char* name() { return "accordion"; }
  int grid_rows() const { return r_; }
  int grid_cols() const { return r_; }
  int waves() const { return r_; }
  std::size_t block() const { return b_; }
  const AccordionProblem& problem() const { return prob_; }
  std::size_t tile_bytes(gs::TileKey) const {
    return b_ * b_ * sizeof(double) + 64;
  }
  analysis::ScheduleWorkload workload() const {
    return analysis::make_accordion_workload(r_);
  }

  WavePhases wave_phases(int wv) const {
    const int bj = wv;
    auto column_reads = [&](bool include_diag) {
      std::vector<gs::TileKey> reads;
      for (int q = 0; q < bj; ++q) reads.push_back({bj - 1, q});
      for (int q = 0; q < bj; ++q) reads.push_back({bj, q});
      if (include_diag) reads.push_back({bj, bj});
      return reads;
    };
    WavePhases phases;
    phases.push_back({NestedTask{'E', gs::TileKey{bj, bj},
                                 column_reads(false)}});
    std::vector<NestedTask> panels;
    for (int bi = bj + 1; bi < r_; ++bi) {
      panels.push_back(NestedTask{'P', gs::TileKey{bi, bj},
                                  column_reads(true)});
    }
    if (!panels.empty()) phases.push_back(std::move(panels));
    return phases;
  }

  TileR compute(const NestedTask& t, const TileLookup& at) const {
    return accordion_tile_kernel(prob_, b_, t.out, at);
  }

  gs::Matrix<double> assemble(const TileLookup& at) const {
    gs::Matrix<double> m(prob_.n, prob_.n, 0.0);
    for (int bj = 0; bj < r_; ++bj) {
      for (int bi = bj; bi < r_; ++bi) {
        const auto& t = *at({bi, bj});
        const std::size_t row0 = static_cast<std::size_t>(bi) * b_;
        const std::size_t col0 = static_cast<std::size_t>(bj) * b_;
        for (std::size_t i = 0; i < b_ && row0 + i < m.rows(); ++i) {
          for (std::size_t j = 0; j < b_ && col0 + j < m.cols(); ++j) {
            m(row0 + i, col0 + j) = t(i, j);
          }
        }
      }
    }
    return m;
  }

 private:
  AccordionProblem prob_;
  std::size_t b_;
  int r_;
};

// ------------------------------------------------------------- Viterbi

/// Viterbi: (horizon+1) trellis rows × r state-tile columns of 1×b row
/// segments; wave t computes every segment of step t from ALL of step t-1.
class ViterbiPlan {
 public:
  using value_type = double;

  ViterbiPlan(const ViterbiProblem& prob, std::size_t block)
      : prob_(prob), b_(block),
        r_(detail::tiles_for(prob.num_states, block)),
        rows_(static_cast<int>(prob.rows())) {}

  static const char* name() { return "viterbi"; }
  int grid_rows() const { return rows_; }
  int grid_cols() const { return r_; }
  int waves() const { return rows_; }
  std::size_t block() const { return b_; }
  const ViterbiProblem& problem() const { return prob_; }
  std::size_t tile_bytes(gs::TileKey) const {
    return b_ * sizeof(double) + 64;
  }
  analysis::ScheduleWorkload workload() const {
    return analysis::make_viterbi_workload(rows_, r_);
  }

  WavePhases wave_phases(int wv) const {
    std::vector<NestedTask> tasks;
    for (int bs = 0; bs < r_; ++bs) {
      NestedTask t{'V', gs::TileKey{wv, bs}, {}};
      if (wv > 0) {
        for (int q = 0; q < r_; ++q) t.reads.push_back({wv - 1, q});
      }
      tasks.push_back(std::move(t));
    }
    return {std::move(tasks)};
  }

  TileR compute(const NestedTask& t, const TileLookup& at) const {
    return viterbi_tile_kernel(prob_, b_, t.out, at);
  }

  gs::Matrix<double> assemble(const TileLookup& at) const {
    gs::Matrix<double> m(prob_.rows(), prob_.num_states, 0.0);
    for (int t = 0; t < rows_; ++t) {
      for (int bs = 0; bs < r_; ++bs) {
        const auto& seg = *at({t, bs});
        const std::size_t col0 = static_cast<std::size_t>(bs) * b_;
        for (std::size_t j = 0; j < b_ && col0 + j < m.cols(); ++j) {
          m(static_cast<std::size_t>(t), col0 + j) = seg(0, j);
        }
      }
    }
    return m;
  }

 private:
  ViterbiProblem prob_;
  std::size_t b_;
  int r_;
  int rows_;
};

}  // namespace nested
