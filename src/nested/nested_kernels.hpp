// nested_kernels.hpp — tiled kernels for the nested-dataflow workloads. Each
// kernel computes one output tile by running the shared per-cell recurrence
// from nested_spec.hpp over the tile's global index range, resolving reads
// either from the tile under construction (in-tile dependencies) or through a
// TileLookup over finished tiles (the wavefront's cross-tile fan-in).
//
// Padding: tiles on the grid fringe cover indices past the real table. The
// recurrences are pure index functions, so padded cells are simply evaluated
// too — real cells only ever read indices no larger than their own, so the
// real region is unaffected and no clamping or masking is needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "grid/tile.hpp"
#include "nested/nested_spec.hpp"
#include "support/check.hpp"

namespace nested {

using TileR = gs::TileRef<double>;

/// Lookup of a finished tile by grid key. Kernels read their own in-progress
/// tile locally and everything else through this.
using TileLookup = std::function<TileR(gs::TileKey)>;

/// GAP tile (bi,bj) at wave bi+bj: b×b cells in row-major order. Reads the
/// tile-row prefix {(bi,q): q<bj}, the tile-column prefix {(p,bj): p<bi},
/// and the diagonal neighbour (bi-1,bj-1).
inline TileR gap_tile_kernel(const GapProblem& p, std::size_t b,
                             gs::TileKey key, const TileLookup& at) {
  auto out = std::make_shared<gs::Tile<double>>(b, b);
  const std::size_t row0 = static_cast<std::size_t>(key.i) * b;
  const std::size_t col0 = static_cast<std::size_t>(key.j) * b;
  auto cell = [&](std::size_t gi, std::size_t gj) -> double {
    const auto bi = static_cast<std::int32_t>(gi / b);
    const auto bj = static_cast<std::int32_t>(gj / b);
    if (bi == key.i && bj == key.j) return (*out)(gi - row0, gj - col0);
    return (*at({bi, bj}))(gi % b, gj % b);
  };
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      (*out)(i, j) = gap_cell(p, row0 + i, col0 + j, cell);
    }
  }
  return out;
}

/// Accordion tile (bi,bj) at wave bj: column-major over valid cells
/// (global j < global i), zero elsewhere. Reads tile-row bj-1 up to the
/// diagonal plus tile-row bj's prefix — including, for panels (bi > bj),
/// the same-wave diagonal tile (bj,bj).
inline TileR accordion_tile_kernel(const AccordionProblem& p, std::size_t b,
                                   gs::TileKey key, const TileLookup& at) {
  auto out = std::make_shared<gs::Tile<double>>(b, b);
  const std::size_t row0 = static_cast<std::size_t>(key.i) * b;
  const std::size_t col0 = static_cast<std::size_t>(key.j) * b;
  auto cell = [&](std::size_t gi, std::size_t gj) -> double {
    const auto bi = static_cast<std::int32_t>(gi / b);
    const auto bj = static_cast<std::int32_t>(gj / b);
    if (bi == key.i && bj == key.j) return (*out)(gi - row0, gj - col0);
    return (*at({bi, bj}))(gi % b, gj % b);
  };
  for (std::size_t j = 0; j < b; ++j) {
    for (std::size_t i = 0; i < b; ++i) {
      const std::size_t gi = row0 + i;
      const std::size_t gj = col0 + j;
      (*out)(i, j) = gj < gi ? accordion_cell(p, gi, gj, cell) : 0.0;
    }
  }
  return out;
}

/// Viterbi tile (t,bs): a 1×b row segment of trellis step t covering states
/// [bs*b, bs*b+b). Reads every tile of step t-1. Padded states past
/// num_states are evaluated like any other (pure index functions), but the
/// max over predecessors only ranges over REAL states, so padded values
/// never feed a real cell.
inline TileR viterbi_tile_kernel(const ViterbiProblem& p, std::size_t b,
                                 gs::TileKey key, const TileLookup& at) {
  auto out = std::make_shared<gs::Tile<double>>(1, b);
  const auto t = static_cast<std::size_t>(key.i);
  const std::size_t state0 = static_cast<std::size_t>(key.j) * b;
  auto cell = [&](std::size_t tt, std::size_t q) -> double {
    GS_DCHECK(tt + 1 == t);
    return (*at({static_cast<std::int32_t>(tt),
                 static_cast<std::int32_t>(q / b)}))(0, q % b);
  };
  for (std::size_t s0 = 0; s0 < b; ++s0) {
    (*out)(0, s0) = viterbi_cell(p, t, state0 + s0, cell);
  }
  return out;
}

}  // namespace nested
