// rng.hpp — deterministic, splittable random number generation.
//
// Workload generators must be reproducible across runs and across the
// real/simulated execution paths, so we use our own splitmix64/xoshiro256**
// instead of std::mt19937 (whose distributions are not portable).
#pragma once

#include <cstdint>
#include <limits>

namespace gs {

/// splitmix64 — used to seed xoshiro and to derive independent streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedbeefcafef00dULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_u64(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent stream for sub-task `index` (e.g., one stream per
  /// tile so generation order does not depend on scheduling).
  Rng split(std::uint64_t index) const {
    std::uint64_t sm = s_[0] ^ (s_[3] + 0x9e3779b97f4a7c15ULL * (index + 1));
    Rng child(0);
    for (auto& s : child.s_) s = splitmix64(sm);
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace gs
