// stopwatch.hpp — wall-clock timing for tasks, stages, and benchmarks.
#pragma once

#include <chrono>
#include <cstdint>

namespace gs {

class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
            .count());
  }

 private:
  clock::time_point start_;
};

}  // namespace gs
