// span2d.hpp — non-owning strided 2-D view over dense storage.
//
// All GEP kernels operate on Span2D so the same code serves full tiles,
// recursive sub-tiles (which are strided windows into the parent tile), and
// whole matrices. Follows the C++ Core Guidelines span idiom: views are
// cheap, regular value types that never own memory.
#pragma once

#include <cstddef>
#include <type_traits>

#include "support/check.hpp"

namespace gs {

template <typename T>
class Span2D {
 public:
  using value_type = std::remove_const_t<T>;

  constexpr Span2D() = default;

  /// View over `rows × cols` elements at `data`, row `i` starting at
  /// `data + i * stride`. `stride >= cols` required.
  constexpr Span2D(T* data, std::size_t rows, std::size_t cols, std::size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    GS_DCHECK(stride_ >= cols_);
  }

  /// Contiguous view (stride == cols).
  constexpr Span2D(T* data, std::size_t rows, std::size_t cols)
      : Span2D(data, rows, cols, cols) {}

  /// Implicit conversion Span2D<T> -> Span2D<const T>.
  template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
  constexpr Span2D(const Span2D<value_type>& other)
      : data_(other.data()), rows_(other.rows()), cols_(other.cols()),
        stride_(other.stride()) {}

  constexpr T* data() const { return data_; }
  constexpr std::size_t rows() const { return rows_; }
  constexpr std::size_t cols() const { return cols_; }
  constexpr std::size_t stride() const { return stride_; }
  constexpr bool empty() const { return rows_ == 0 || cols_ == 0; }
  constexpr bool contiguous() const { return stride_ == cols_; }
  constexpr std::size_t size() const { return rows_ * cols_; }

  constexpr T& operator()(std::size_t i, std::size_t j) const {
    GS_DCHECK(i < rows_ && j < cols_);
    return data_[i * stride_ + j];
  }

  constexpr T* row(std::size_t i) const {
    GS_DCHECK(i < rows_);
    return data_ + i * stride_;
  }

  /// Sub-window of `r × c` elements with top-left corner at (i0, j0).
  constexpr Span2D subview(std::size_t i0, std::size_t j0, std::size_t r,
                           std::size_t c) const {
    GS_DCHECK(i0 + r <= rows_ && j0 + c <= cols_);
    return Span2D(data_ + i0 * stride_ + j0, r, c, stride_);
  }

  /// Quadrant/sub-block view for an r-way split: block (bi, bj) of an
  /// `nb × nb` grid of equal blocks. rows()/cols() must be divisible by nb.
  constexpr Span2D block(std::size_t bi, std::size_t bj, std::size_t nb) const {
    GS_DCHECK(nb > 0 && rows_ % nb == 0 && cols_ % nb == 0);
    const std::size_t br = rows_ / nb, bc = cols_ / nb;
    return subview(bi * br, bj * bc, br, bc);
  }

  /// True when the two views address the same top-left element (used by
  /// kernels to detect the aliased A/B/C cases).
  constexpr bool same_origin(const Span2D<const value_type>& other) const {
    return static_cast<const void*>(data_) == static_cast<const void*>(other.data());
  }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

template <typename T>
using ConstSpan2D = Span2D<const T>;

/// Element-wise copy between views of the same shape.
template <typename T>
void copy_span(Span2D<const T> src, Span2D<T> dst) {
  GS_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  for (std::size_t i = 0; i < src.rows(); ++i) {
    const T* s = src.row(i);
    T* d = dst.row(i);
    for (std::size_t j = 0; j < src.cols(); ++j) d[j] = s[j];
  }
}

/// Fill a view with one value.
template <typename T>
void fill_span(Span2D<T> dst, const T& value) {
  for (std::size_t i = 0; i < dst.rows(); ++i) {
    T* d = dst.row(i);
    for (std::size_t j = 0; j < dst.cols(); ++j) d[j] = value;
  }
}

}  // namespace gs
