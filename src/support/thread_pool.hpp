// thread_pool.hpp — a classic fixed-size worker pool.
//
// Sparklet executors schedule tasks onto one shared pool; the *virtual*
// cluster topology (executors × cores) is tracked separately by the
// scheduler's VirtualTimeline, so correctness never depends on the physical
// core count of the host.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/check.hpp"

namespace gs {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    GS_CHECK(num_threads > 0);
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t num_threads() const { return workers_.size(); }

  /// Submit a callable; returns a future for its result. Exceptions thrown
  /// by the task are captured in the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      GS_CHECK_MSG(!stopping_, "submit() after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Run fn(i) for i in [0, n) across the pool and wait for completion.
/// Rethrows the first task exception on the calling thread.
template <typename F>
void parallel_for(ThreadPool& pool, std::size_t n, F&& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([i, &fn] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gs
