// format.hpp — tiny printf-style string formatting (libstdc++ 12 lacks
// <format>). Type-checked by the compiler via the format attribute.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace gs {

#if defined(__GNUC__)
#define GS_PRINTF_LIKE(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define GS_PRINTF_LIKE(fmt_idx, arg_idx)
#endif

GS_PRINTF_LIKE(1, 2)
inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

/// Human-readable byte count ("1.5 GiB").
inline std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return strfmt("%.1f %s", bytes, units[u]);
}

/// Human-readable duration ("3m 12s", "45.1s", "12.3ms").
inline std::string human_seconds(double s) {
  if (s >= 3600.0) return strfmt("%dh %dm", int(s / 3600), int(s / 60) % 60);
  if (s >= 60.0) return strfmt("%dm %02ds", int(s / 60), int(s) % 60);
  if (s >= 1.0) return strfmt("%.1fs", s);
  if (s >= 1e-3) return strfmt("%.1fms", s * 1e3);
  return strfmt("%.1fus", s * 1e6);
}

}  // namespace gs
