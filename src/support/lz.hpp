// lz.hpp — tiny LZ4-style block compressor for the serialized storage tier.
//
// Greedy hash-chain match finder over a 64 KiB window, token stream of
// literal runs and (offset, length) copies. The format is private to this
// repo (spill files never leave the process), so it optimizes for simplicity
// and an exact round-trip guarantee rather than ratio. Compression is
// deterministic: same input bytes → same output bytes, which the chaos suite
// relies on for bit-identical spill checksums across interleavings.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

namespace gs {

namespace lz_detail {

inline constexpr std::size_t kMinMatch = 4;
inline constexpr std::size_t kMaxOffset = 0xffff;
inline constexpr std::size_t kMaxRun = 0xffff;
inline constexpr int kHashBits = 13;

inline std::uint32_t lz_hash(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::size_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

}  // namespace lz_detail

/// Token stream: 0x00 <u16 len> <len literal bytes> | 0x01 <u16 offset>
/// <u16 len> (copy `len` bytes from `pos - offset`). Runs longer than 64 KiB
/// split into multiple tokens.
inline std::vector<std::uint8_t> lz_compress(const std::uint8_t* data,
                                             std::size_t n) {
  using namespace lz_detail;
  std::vector<std::uint8_t> out;
  out.reserve(n / 2 + 16);
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0);
  // Table stores pos+1 so 0 means "empty".
  std::size_t pos = 0;
  std::size_t lit_start = 0;
  auto flush_literals = [&](std::size_t end) {
    std::size_t at = lit_start;
    while (at < end) {
      const std::size_t run = std::min(end - at, kMaxRun);
      out.push_back(0x00);
      put_u16(out, run);
      out.insert(out.end(), data + at, data + at + run);
      at += run;
    }
  };
  while (pos + kMinMatch <= n) {
    const std::uint32_t h = lz_hash(data + pos);
    const std::uint32_t prev = table[h];
    table[h] = static_cast<std::uint32_t>(pos + 1);
    if (prev != 0) {
      const std::size_t cand = prev - 1;
      const std::size_t offset = pos - cand;
      if (offset <= kMaxOffset &&
          std::memcmp(data + cand, data + pos, kMinMatch) == 0) {
        std::size_t len = kMinMatch;
        while (pos + len < n && len < kMaxRun &&
               data[cand + len] == data[pos + len]) {
          ++len;
        }
        flush_literals(pos);
        out.push_back(0x01);
        put_u16(out, offset);
        put_u16(out, len);
        pos += len;
        lit_start = pos;
        continue;
      }
    }
    ++pos;
  }
  flush_literals(n);
  return out;
}

/// Inverse of lz_compress. `raw_size` is the expected decompressed size;
/// returns nullopt on any malformed token stream or size mismatch (a corrupt
/// spill payload must fail loudly, never partially decode).
inline std::optional<std::vector<std::uint8_t>> lz_decompress(
    const std::uint8_t* data, std::size_t n, std::size_t raw_size) {
  std::vector<std::uint8_t> out;
  out.reserve(raw_size);
  std::size_t pos = 0;
  auto get_u16 = [&](std::size_t& v) -> bool {
    if (pos + 2 > n) return false;
    v = static_cast<std::size_t>(data[pos]) |
        (static_cast<std::size_t>(data[pos + 1]) << 8);
    pos += 2;
    return true;
  };
  while (pos < n) {
    const std::uint8_t op = data[pos++];
    if (op == 0x00) {
      std::size_t run = 0;
      if (!get_u16(run) || pos + run > n) return std::nullopt;
      out.insert(out.end(), data + pos, data + pos + run);
      pos += run;
    } else if (op == 0x01) {
      std::size_t offset = 0;
      std::size_t len = 0;
      if (!get_u16(offset) || !get_u16(len)) return std::nullopt;
      if (offset == 0 || offset > out.size()) return std::nullopt;
      // Overlapping copies are legal (RLE-style); copy byte-by-byte.
      std::size_t src = out.size() - offset;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    } else {
      return std::nullopt;
    }
    if (out.size() > raw_size) return std::nullopt;
  }
  if (out.size() != raw_size) return std::nullopt;
  return out;
}

}  // namespace gs
