// check.hpp — error handling primitives shared by every module.
//
// The library is exception-based at API boundaries (configuration errors,
// capacity failures in the simulated block store) and assertion-based for
// internal invariants. GS_CHECK is always on; GS_DCHECK compiles away in
// release builds for hot kernel paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gs {

/// Thrown for user-facing configuration errors (bad tile sizes, mismatched
/// partitioner, illegal parameter combinations).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when the simulated storage substrate runs out of capacity — models
/// the paper's "constrained by the size of the underlying SSDs" failure mode.
class CapacityError : public std::runtime_error {
 public:
  explicit CapacityError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a job is aborted mid-flight (task failure propagation).
class JobAbortedError : public std::runtime_error {
 public:
  explicit JobAbortedError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a job is cancelled cooperatively (serve-layer cancel(), or a
/// SparkContext cancel flag flipped mid-solve). The scheduler polls the flag
/// at task-release points and stage boundaries, drains in-flight tasks, and
/// rethrows — so cancellation never leaves half-registered blocks behind.
class JobCancelledError : public std::runtime_error {
 public:
  explicit JobCancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when a task reads a partition whose backing data is gone (executor
/// loss, eviction, injected reducer-side fetch failure). The stage scheduler
/// catches it, resubmits the parent stage to regenerate the lost outputs via
/// lineage, and retries with exponential backoff — Spark's FetchFailed path.
class FetchFailedError : public std::runtime_error {
 public:
  explicit FetchFailedError(const std::string& what)
      : std::runtime_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::fprintf(stderr, "GS_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace gs

#define GS_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::gs::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define GS_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) ::gs::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define GS_DCHECK(expr) ((void)0)
#else
#define GS_DCHECK(expr) GS_CHECK(expr)
#endif

#define GS_THROW_IF(cond, ExType, msg)    \
  do {                                    \
    if (cond) throw ExType(msg);          \
  } while (0)

// GS_PUSH/POP_IGNORE_DEPRECATED — scoped suppression of
// -Wdeprecated-declarations, for the shim bodies that forward to their own
// deprecated siblings and for the tests that exercise the shims on purpose
// (the build is -Werror, so an unsuppressed warning is a build break).
#if defined(__GNUC__) || defined(__clang__)
#define GS_PUSH_IGNORE_DEPRECATED \
  _Pragma("GCC diagnostic push")  \
  _Pragma("GCC diagnostic ignored \"-Wdeprecated-declarations\"")
#define GS_POP_IGNORE_DEPRECATED _Pragma("GCC diagnostic pop")
#else
#define GS_PUSH_IGNORE_DEPRECATED
#define GS_POP_IGNORE_DEPRECATED
#endif

// GS_RESTRICT — portable `restrict` qualifier for hot-loop row pointers.
// Kernels apply it only where operands are provably disjoint (e.g. row i vs
// row k with i != k); aliased cases (kernel A's own pivot row) use separate,
// unqualified loops.
#if defined(__GNUC__) || defined(__clang__)
#define GS_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define GS_RESTRICT __restrict
#else
#define GS_RESTRICT
#endif
