// table.hpp — ASCII table and CSV writers used by the benchmark harness to
// print paper-style tables (Table I/II rows, Fig. 6/8/9 series).
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace gs {

/// Rectangular table of strings with a header row, rendered with aligned
/// columns. Cells are right-aligned (numbers) except the first column.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    GS_CHECK_MSG(cells.size() == header_.size(), "row width mismatch");
    rows_.push_back(std::move(cells));
  }

  std::size_t num_rows() const { return rows_.size(); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c)
        width[c] = std::max(width[c], r[c].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto emit_row = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        os << (c == 0 ? "| " : " ");
        const std::size_t pad = width[c] - r[c].size();
        if (c == 0) {
          os << r[c] << std::string(pad, ' ');
        } else {
          os << std::string(pad, ' ') << r[c];
        }
        os << " |";
      }
      os << '\n';
    };
    auto emit_rule = [&] {
      for (std::size_t c = 0; c < width.size(); ++c) {
        os << (c == 0 ? "+" : "") << std::string(width[c] + 2, '-') << "+";
      }
      os << '\n';
    };

    emit_rule();
    emit_row(header_);
    emit_rule();
    for (const auto& r : rows_) emit_row(r);
    emit_rule();
  }

  /// Also persist as CSV so EXPERIMENTS.md numbers are regenerable.
  void write_csv(const std::string& path) const {
    std::ofstream f(path);
    GS_CHECK_MSG(f.good(), "cannot open CSV output: " + path);
    auto emit = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c)
        f << (c ? "," : "") << r[c];
      f << '\n';
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gs
