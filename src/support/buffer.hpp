// buffer.hpp — cache-line-aligned owning storage for dense tiles.
//
// Tiles in the blocked DP table are hot, so their backing storage is aligned
// to 64 bytes to keep SIMD loads clean and avoid false sharing between
// OpenMP threads working on adjacent tiles.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <utility>

#include "support/check.hpp"

namespace gs {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, aligned, fixed-size array of trivially-copyable T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer is for POD-like element types");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T), kCacheLineBytes);
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    GS_CHECK_MSG(p != nullptr, "aligned_alloc failed");
    data_.reset(static_cast<T*>(p));
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    if (size_ != 0) std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    GS_DCHECK(i < size_);
    return data_.get()[i];
  }
  const T& operator[](std::size_t i) const {
    GS_DCHECK(i < size_);
    return data_.get()[i];
  }

 private:
  static std::size_t round_up(std::size_t v, std::size_t to) {
    return (v + to - 1) / to * to;
  }

  struct FreeDeleter {
    void operator()(T* p) const { std::free(p); }
  };

  std::unique_ptr<T, FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace gs
