// simd_vec.hpp — minimal portable vector abstraction for the SIMD kernel
// backend (kernels/simd.hpp).
//
// Lane width is selected at compile time from the target ISA:
//   AVX-512F : 8 doubles / 64 bytes per vector
//   AVX2     : 4 doubles / 32 bytes per vector
//   NEON     : 2 doubles / 16 bytes per vector (AArch64)
//   fallback : 1 lane — plain scalar ops, so every SIMD kernel compiles and
//              runs (bit-identically) on any host.
//
// Only the handful of operations the GEP updates need are exposed: unaligned
// load/store, broadcast, add/sub/mul/div, min/max for doubles, and bitwise
// or/and for bytes. All loads and stores are unaligned: recursive sub-tiles
// are strided windows into 64-byte-aligned tile storage, so rows can start
// at any element offset.
//
// IEEE notes (why the vector ops match the scalar semiring ops bit-for-bit):
//   * min-plus: `u + v` equals MinPlusSemiring::times(u, v) whenever no -inf
//     operand is present; GEP tables for FW never contain -inf (weights and
//     +inf padding only produce values > -inf). min_pd/std::min differ only
//     in which operand they return for equal values — same bit pattern here.
//   * GE: the vector kernel evaluates x - (u*v)/w with exactly the scalar
//     expression's operation order; the intervening division prevents FMA
//     contraction on either side, so results are bit-identical.
//   * max-min and bool or-and are exact in any evaluation order.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/check.hpp"

// GCC's _mm512_min_pd/_mm512_max_pd expand through _mm512_undefined_pd(),
// whose self-initialization idiom trips -Wmaybe-uninitialized when inlined
// into optimized code (GCC PR105593) — suppress for the intrinsic header's
// locations only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#if defined(__AVX512F__)
#define GS_SIMD_AVX512 1
#include <immintrin.h>
#elif defined(__AVX2__)
#define GS_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define GS_SIMD_NEON 1
#include <arm_neon.h>
#else
#define GS_SIMD_SCALAR 1
#endif
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace gs::simd {

/// Human-readable name of the compiled-in backend (configure-time report and
/// bench CSV provenance).
inline constexpr const char* backend_name() {
#if defined(GS_SIMD_AVX512)
  return "avx512";
#elif defined(GS_SIMD_AVX2)
  return "avx2";
#elif defined(GS_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------- doubles

#if defined(GS_SIMD_AVX512)

struct VecD {
  __m512d v;
  static constexpr std::size_t kLanes = 8;
  static VecD load(const double* p) { return {_mm512_loadu_pd(p)}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  static VecD broadcast(double x) { return {_mm512_set1_pd(x)}; }
  friend VecD operator+(VecD a, VecD b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm512_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm512_div_pd(a.v, b.v)}; }
  static VecD min(VecD a, VecD b) { return {_mm512_min_pd(a.v, b.v)}; }
  static VecD max(VecD a, VecD b) { return {_mm512_max_pd(a.v, b.v)}; }
};

#elif defined(GS_SIMD_AVX2)

struct VecD {
  __m256d v;
  static constexpr std::size_t kLanes = 4;
  static VecD load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static VecD broadcast(double x) { return {_mm256_set1_pd(x)}; }
  friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }
  static VecD min(VecD a, VecD b) { return {_mm256_min_pd(a.v, b.v)}; }
  static VecD max(VecD a, VecD b) { return {_mm256_max_pd(a.v, b.v)}; }
};

#elif defined(GS_SIMD_NEON)

struct VecD {
  float64x2_t v;
  static constexpr std::size_t kLanes = 2;
  static VecD load(const double* p) { return {vld1q_f64(p)}; }
  void store(double* p) const { vst1q_f64(p, v); }
  static VecD broadcast(double x) { return {vdupq_n_f64(x)}; }
  friend VecD operator+(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {vsubq_f64(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {vdivq_f64(a.v, b.v)}; }
  static VecD min(VecD a, VecD b) { return {vminq_f64(a.v, b.v)}; }
  static VecD max(VecD a, VecD b) { return {vmaxq_f64(a.v, b.v)}; }
};

#else

struct VecD {
  double v;
  static constexpr std::size_t kLanes = 1;
  static VecD load(const double* p) { return {*p}; }
  void store(double* p) const { *p = v; }
  static VecD broadcast(double x) { return {x}; }
  friend VecD operator+(VecD a, VecD b) { return {a.v + b.v}; }
  friend VecD operator-(VecD a, VecD b) { return {a.v - b.v}; }
  friend VecD operator*(VecD a, VecD b) { return {a.v * b.v}; }
  friend VecD operator/(VecD a, VecD b) { return {a.v / b.v}; }
  static VecD min(VecD a, VecD b) { return {b.v < a.v ? b.v : a.v}; }
  static VecD max(VecD a, VecD b) { return {a.v < b.v ? b.v : a.v}; }
};

#endif

// ------------------------------------------------------------------ bytes

#if defined(GS_SIMD_AVX512)

struct VecB {
  __m512i v;
  static constexpr std::size_t kLanes = 64;
  static VecB load(const std::uint8_t* p) { return {_mm512_loadu_si512(p)}; }
  void store(std::uint8_t* p) const { _mm512_storeu_si512(p, v); }
  static VecB broadcast(std::uint8_t x) {
    return {_mm512_set1_epi8(static_cast<char>(x))};
  }
  friend VecB operator|(VecB a, VecB b) { return {_mm512_or_si512(a.v, b.v)}; }
  friend VecB operator&(VecB a, VecB b) { return {_mm512_and_si512(a.v, b.v)}; }
};

#elif defined(GS_SIMD_AVX2)

struct VecB {
  __m256i v;
  static constexpr std::size_t kLanes = 32;
  static VecB load(const std::uint8_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint8_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static VecB broadcast(std::uint8_t x) {
    return {_mm256_set1_epi8(static_cast<char>(x))};
  }
  friend VecB operator|(VecB a, VecB b) { return {_mm256_or_si256(a.v, b.v)}; }
  friend VecB operator&(VecB a, VecB b) { return {_mm256_and_si256(a.v, b.v)}; }
};

#elif defined(GS_SIMD_NEON)

struct VecB {
  uint8x16_t v;
  static constexpr std::size_t kLanes = 16;
  static VecB load(const std::uint8_t* p) { return {vld1q_u8(p)}; }
  void store(std::uint8_t* p) const { vst1q_u8(p, v); }
  static VecB broadcast(std::uint8_t x) { return {vdupq_n_u8(x)}; }
  friend VecB operator|(VecB a, VecB b) { return {vorrq_u8(a.v, b.v)}; }
  friend VecB operator&(VecB a, VecB b) { return {vandq_u8(a.v, b.v)}; }
};

#else

struct VecB {
  std::uint8_t v;
  static constexpr std::size_t kLanes = 1;
  static VecB load(const std::uint8_t* p) { return {*p}; }
  void store(std::uint8_t* p) const { *p = v; }
  static VecB broadcast(std::uint8_t x) { return {x}; }
  friend VecB operator|(VecB a, VecB b) {
    return {static_cast<std::uint8_t>(a.v | b.v)};
  }
  friend VecB operator&(VecB a, VecB b) {
    return {static_cast<std::uint8_t>(a.v & b.v)};
  }
};

#endif

/// Compile-time vector width (in lanes) for an element type; 1 for types
/// without a vector implementation.
template <typename T>
inline constexpr std::size_t lanes_for = 1;
template <>
inline constexpr std::size_t lanes_for<double> = VecD::kLanes;
template <>
inline constexpr std::size_t lanes_for<std::uint8_t> = VecB::kLanes;

/// True when the build has real (multi-lane) vector units available.
inline constexpr bool has_vector_unit() { return VecD::kLanes > 1; }

}  // namespace gs::simd
