// paren_kernels.hpp — blocked kernels for the parenthesis recurrence.
//
// The DP table is decomposed into an r×r grid of b×b tiles over its upper
// triangle. A tile (bi, bj) with bj > bi accumulates contributions from
// three sources, in this order:
//
//   1. accumulate(X, U, V)  — split points k inside a whole middle block bk
//      (bi < bk < bj): a (min,+) matrix product with the spec's split
//      weight, X(i,j) ⊕= U(i,k) + V(k,j) + w(i,k,j). Runs once per middle
//      block; all inputs are finished tiles from earlier wavefronts.
//   2. flank(X, L, R)       — split points inside X's own row-range I
//      (k > i, via the finished diagonal tile L = C[I×I] and X's own
//      column k below) and inside its column-range J (k < j, via X's own
//      row and the diagonal tile R = C[J×J]). The i-descending /
//      j-ascending sweep makes every X(k, j) and X(i, k) it reads final.
//   3. diag(X)              — in-place wavefront on a diagonal tile (all
//      split points of its cells are internal).
//
// Kernels take global post offsets so the spec's w(i,k,j) sees real indices.
#pragma once

#include "paren/paren_spec.hpp"
#include "support/span2d.hpp"

namespace paren {

template <ParenSpecType Spec>
class ParenKernels {
 public:
  using T = typename Spec::value_type;
  using Span = gs::Span2D<T>;
  using CSpan = gs::Span2D<const T>;

  explicit ParenKernels(Spec spec) : spec_(std::move(spec)) {}

  const Spec& spec() const { return spec_; }

  /// In-place parenthesis DP on a diagonal tile covering posts
  /// [off, off + m). Assumes adjacent-pair cells X(t, t+1) hold leaf costs
  /// and everything longer is the ⊕-identity (+∞).
  void diag(Span x, std::size_t off) const {
    const std::size_t m = x.rows();
    GS_DCHECK(x.cols() == m);
    for (std::size_t span = 2; span < m; ++span) {
      for (std::size_t i = 0; i + span < m; ++i) {
        const std::size_t j = i + span;
        T best = x(i, j);
        for (std::size_t k = i + 1; k < j; ++k) {
          const T cand = x(i, k) + x(k, j) +
                         spec_.weight(off + i, off + k, off + j);
          if (cand < best) best = cand;
        }
        x(i, j) = best;
      }
    }
  }

  /// X(i,j) ⊕= U(i,k) + V(k,j) + w over one whole middle block:
  /// X rows at posts row0+i, U/V split posts at mid0+k, X cols at col0+j.
  void accumulate(Span x, CSpan u, CSpan v, std::size_t row0, std::size_t mid0,
                  std::size_t col0) const {
    const std::size_t b = x.rows();
    GS_DCHECK(x.cols() == b && u.rows() == b && u.cols() == b &&
              v.rows() == b && v.cols() == b);
    for (std::size_t k = 0; k < b; ++k) {
      const T* vk = v.row(k);
      for (std::size_t i = 0; i < b; ++i) {
        const T uik = u(i, k);
        if (uik == std::numeric_limits<T>::infinity()) continue;
        T* xi = x.row(i);
        for (std::size_t j = 0; j < b; ++j) {
          const T cand =
              uik + vk[j] + spec_.weight(row0 + i, mid0 + k, col0 + j);
          if (cand < xi[j]) xi[j] = cand;
        }
      }
    }
  }

  /// Complete X with split points inside its own row range I (reading the
  /// finished diagonal tile L = C[I×I] and X's rows below i) and inside its
  /// column range J (reading X's columns before j and R = C[J×J]).
  void flank(Span x, CSpan l, CSpan r, std::size_t row0,
             std::size_t col0) const {
    const std::size_t b = x.rows();
    GS_DCHECK(x.cols() == b && l.rows() == b && r.rows() == b);
    for (std::size_t ii = b; ii-- > 0;) {   // i descending: X(k,j) final
      for (std::size_t j = 0; j < b; ++j) {  // j ascending: X(i,k) final
        T best = x(ii, j);
        for (std::size_t k = ii + 1; k < b; ++k) {  // split inside I
          const T cand = l(ii, k) + x(k, j) +
                         spec_.weight(row0 + ii, row0 + k, col0 + j);
          if (cand < best) best = cand;
        }
        for (std::size_t k = 0; k < j; ++k) {  // split inside J
          const T cand = x(ii, k) + r(k, j) +
                         spec_.weight(row0 + ii, col0 + k, col0 + j);
          if (cand < best) best = cand;
        }
        x(ii, j) = best;
      }
    }
  }

 private:
  Spec spec_;
};

/// Executable specification: the textbook O(n³) interval loop, used to
/// validate the blocked pipeline.
template <ParenSpecType Spec>
void reference_parenthesis(const Spec& spec,
                           gs::Span2D<typename Spec::value_type> c) {
  const std::size_t n = spec.num_posts();
  GS_CHECK(c.rows() >= n && c.cols() >= n);
  for (std::size_t span = 2; span < n; ++span) {
    for (std::size_t i = 0; i + span < n; ++i) {
      const std::size_t j = i + span;
      auto best = c(i, j);
      for (std::size_t k = i + 1; k < j; ++k) {
        const auto cand = c(i, k) + c(k, j) + spec.weight(i, k, j);
        if (cand < best) best = cand;
      }
      c(i, j) = best;
    }
  }
}

}  // namespace paren
