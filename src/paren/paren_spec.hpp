// paren_spec.hpp — the parenthesis problem family (paper §VI future work:
// "extend the framework to include other data-intensive DP algorithms
// (beyond GEP)"; §III cites the family: CYK, optimal polygon triangulation,
// RNA folding).
//
// The canonical recurrence over "posts" 0..n−1:
//
//     C[i][j] = min_{i<k<j} ( C[i][k] + C[k][j] + w(i,k,j) ),   j > i+1,
//     C[i][i+1] given (leaf costs).
//
// Unlike GEP's Σ_G-driven k-outer loop, dependencies here force a wavefront
// over interval lengths — a genuinely different DP shape, which is exactly
// why the paper leaves it as future work. A ParenSpec supplies the
// split-weight w(i,k,j); instances below cover matrix-chain multiplication,
// optimal polygon triangulation, and the pure (weightless) form.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "support/check.hpp"

namespace paren {

template <typename S>
concept ParenSpecType = requires(const S& s, std::size_t i) {
  typename S::value_type;
  { s.weight(i, i, i) } -> std::convertible_to<typename S::value_type>;
  { s.num_posts() } -> std::convertible_to<std::size_t>;
  { S::name() } -> std::convertible_to<const char*>;
};

inline constexpr double kParenInf = std::numeric_limits<double>::infinity();

/// Pure parenthesis problem: w ≡ 0; all structure lives in the leaf costs
/// C[i][i+1] (an abstract folding/merging cost model).
class SimpleParenSpec {
 public:
  using value_type = double;

  explicit SimpleParenSpec(std::size_t num_posts) : n_(num_posts) {}

  double weight(std::size_t, std::size_t, std::size_t) const { return 0.0; }
  std::size_t num_posts() const { return n_; }
  static const char* name() { return "simple-parenthesis"; }

 private:
  std::size_t n_;
};

/// Matrix-chain multiplication: matrices A_1..A_m with A_t of shape
/// dims[t−1]×dims[t]; posts are the m+1 fence positions. Splitting the
/// product over (i,j) at k multiplies a dims[i]×dims[k] by a dims[k]×dims[j]
/// result: w(i,k,j) = dims[i]·dims[k]·dims[j] scalar multiplications.
class MatrixChainSpec {
 public:
  using value_type = double;

  explicit MatrixChainSpec(std::vector<double> dims)
      : dims_(std::make_shared<const std::vector<double>>(std::move(dims))) {
    GS_THROW_IF(dims_->size() < 2, gs::ConfigError,
                "matrix chain needs at least one matrix (two dims)");
  }

  /// Padded posts (virtual padding of the blocked table) clamp to the last
  /// real dim — their candidates are +∞ anyway and can never win.
  double weight(std::size_t i, std::size_t k, std::size_t j) const {
    const std::size_t last = dims_->size() - 1;
    return (*dims_)[std::min(i, last)] * (*dims_)[std::min(k, last)] *
           (*dims_)[std::min(j, last)];
  }
  std::size_t num_posts() const { return dims_->size(); }
  static const char* name() { return "matrix-chain"; }

  const std::vector<double>& dims() const { return *dims_; }

 private:
  std::shared_ptr<const std::vector<double>> dims_;  // cheap to copy around
};

/// Optimal polygon triangulation: posts are polygon vertices (convex,
/// ordered); triangulating (i,j) with apex k adds triangle (v_i, v_k, v_j),
/// costed here by its perimeter (the classic formulation).
class PolygonTriangulationSpec {
 public:
  using value_type = double;

  struct Point {
    double x = 0.0;
    double y = 0.0;
  };

  explicit PolygonTriangulationSpec(std::vector<Point> vertices)
      : v_(std::make_shared<const std::vector<Point>>(std::move(vertices))) {
    GS_THROW_IF(v_->size() < 3, gs::ConfigError,
                "polygon needs at least three vertices");
  }

  double weight(std::size_t i, std::size_t k, std::size_t j) const {
    const std::size_t last = v_->size() - 1;
    i = std::min(i, last);
    k = std::min(k, last);
    j = std::min(j, last);
    return dist(i, k) + dist(k, j) + dist(i, j);
  }
  std::size_t num_posts() const { return v_->size(); }
  static const char* name() { return "polygon-triangulation"; }

 private:
  double dist(std::size_t a, std::size_t b) const {
    const double dx = (*v_)[a].x - (*v_)[b].x;
    const double dy = (*v_)[a].y - (*v_)[b].y;
    return std::sqrt(dx * dx + dy * dy);
  }

  std::shared_ptr<const std::vector<Point>> v_;
};

static_assert(ParenSpecType<SimpleParenSpec>);
static_assert(ParenSpecType<MatrixChainSpec>);
static_assert(ParenSpecType<PolygonTriangulationSpec>);

}  // namespace paren
