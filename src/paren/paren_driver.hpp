// paren_driver.hpp — the parenthesis family on sparklet: a wavefront of
// block super-diagonals, Collect-Broadcast style.
//
// Schedule (r×r upper-triangular tile grid):
//   wave 0:   all r diagonal tiles solve independently (paren diag kernel);
//   wave d:   every tile (bi, bi+d) accumulates its d−1 middle-block
//             (min,+) products, then closes with the flank kernel against
//             the two diagonal tiles. All r−d tiles of a wave are
//             independent → one Spark stage per wave.
//
// Finished tiles are collected to the driver and re-broadcast each wave —
// the CB strategy is the natural fit here because every wave-d tile reads
// *all* earlier tiles of its row and column (an IM fan-out would copy each
// finished tile Θ(r) times per wave).
#pragma once

#include <unordered_map>
#include <vector>

#include "grid/tile_grid.hpp"
#include "paren/paren_kernels.hpp"
#include "sparklet/rdd.hpp"
#include "support/stopwatch.hpp"

namespace paren {

struct ParenOptions {
  std::size_t block_size = 128;
  int num_partitions = 0;  ///< 0 → cluster default

  void validate() const {
    GS_THROW_IF(block_size == 0, gs::ConfigError, "block_size must be > 0");
    GS_THROW_IF(num_partitions < 0, gs::ConfigError,
                "num_partitions must be >= 0");
  }
};

struct ParenStats {
  double wall_seconds = 0.0;
  int waves = 0;
  int stages = 0;
  std::size_t collect_bytes = 0;
  std::size_t broadcast_bytes = 0;
  int grid_r = 0;
};

/// Solve the parenthesis recurrence for `spec` with the given leaf costs
/// (leaf_costs[t] = C[t][t+1], size num_posts()−1). Returns the full DP
/// table restricted to real posts; the optimum is table(0, n−1).
template <ParenSpecType Spec>
gs::Matrix<typename Spec::value_type> paren_solve(
    sparklet::SparkContext& sc, const Spec& spec,
    const std::vector<typename Spec::value_type>& leaf_costs,
    const ParenOptions& opt = {}, ParenStats* stats = nullptr) {
  using T = typename Spec::value_type;
  using TileR = gs::TileRef<T>;
  using KV = std::pair<gs::TileKey, TileR>;

  opt.validate();
  const std::size_t n = spec.num_posts();
  GS_THROW_IF(leaf_costs.size() + 1 != n, gs::ConfigError,
              "need exactly num_posts()-1 leaf costs");

  // Seed table: +∞ everywhere, 0 on the diagonal, leaves on (t, t+1).
  gs::Matrix<T> seed(n, n, std::numeric_limits<T>::infinity());
  for (std::size_t t = 0; t < n; ++t) seed(t, t) = T{};
  for (std::size_t t = 0; t + 1 < n; ++t) seed(t, t + 1) = leaf_costs[t];

  gs::TileGrid<T> grid(seed, opt.block_size, /*pad_diag=*/T{},
                       /*pad_off=*/std::numeric_limits<T>::infinity());
  const auto layout = grid.layout();
  const int r = static_cast<int>(layout.r);
  const std::size_t b = layout.block;

  const int np = opt.num_partitions > 0
                     ? opt.num_partitions
                     : static_cast<int>(sc.config().effective_partitions());
  auto part = std::make_shared<sparklet::HashPartitioner>(np);
  auto kern = std::make_shared<const ParenKernels<Spec>>(spec);

  gs::Stopwatch wall;
  const int stages0 = sc.metrics().num_stages();
  const std::size_t collect0 = sc.metrics().total_collect_bytes();
  const std::size_t bcast0 = sc.metrics().total_broadcast_bytes();

  // Only the upper triangle participates.
  std::vector<KV> upper;
  for (int bi = 0; bi < r; ++bi) {
    for (int bj = bi; bj < r; ++bj) {
      upper.push_back({gs::TileKey{bi, bj},
                       grid.at(std::size_t(bi), std::size_t(bj))});
    }
  }
  auto dp = sparklet::parallelize_pairs(sc, upper, part, "parenDP");

  using DoneMap = std::unordered_map<gs::TileKey, TileR, gs::TileKeyHash>;
  DoneMap done;

  // Wave 0: diagonal tiles.
  auto diag_entries =
      dp.filter([](const KV& kv) { return kv.first.i == kv.first.j; },
                "parenDiag")
          .map(
              [kern, b](const KV& kv) {
                auto out = std::make_shared<gs::Tile<T>>(*kv.second);
                kern->diag(out->span(), std::size_t(kv.first.i) * b);
                return KV{kv.first, TileR(std::move(out))};
              },
              "parenDiagKernel")
          .collect("parenCollectDiag");
  for (auto& [key, tile] : diag_entries) done.emplace(key, tile);
  int waves = 1;

  // Waves d = 1 .. r-1.
  for (int d = 1; d < r; ++d) {
    auto done_bc = sc.broadcast(done);  // all finished tiles so far
    auto wave_entries =
        dp.filter([d](const KV& kv) { return kv.first.j - kv.first.i == d; },
                  "parenWaveFilter")
            .map(
                [kern, done_bc, b](const KV& kv) {
                  const int bi = kv.first.i, bj = kv.first.j;
                  const DoneMap& prev = done_bc.value();
                  auto out = std::make_shared<gs::Tile<T>>(*kv.second);
                  const std::size_t row0 = std::size_t(bi) * b;
                  const std::size_t col0 = std::size_t(bj) * b;
                  for (int bk = bi + 1; bk < bj; ++bk) {
                    kern->accumulate(out->span(),
                                     prev.at(gs::TileKey{bi, bk})->span(),
                                     prev.at(gs::TileKey{bk, bj})->span(),
                                     row0, std::size_t(bk) * b, col0);
                  }
                  kern->flank(out->span(),
                              prev.at(gs::TileKey{bi, bi})->span(),
                              prev.at(gs::TileKey{bj, bj})->span(), row0,
                              col0);
                  return KV{kv.first, TileR(std::move(out))};
                },
                "parenWaveKernel")
            .collect("parenCollectWave");
    for (auto& [key, tile] : wave_entries) done.emplace(key, tile);
    ++waves;
  }

  // Assemble the result table from the finished tiles.
  gs::Matrix<T> result(n, n, std::numeric_limits<T>::infinity());
  for (std::size_t t = 0; t < n; ++t) result(t, t) = T{};
  for (const auto& [key, tile] : done) {
    for (std::size_t i = 0; i < b; ++i) {
      const std::size_t gi = std::size_t(key.i) * b + i;
      if (gi >= n) continue;
      for (std::size_t j = 0; j < b; ++j) {
        const std::size_t gj = std::size_t(key.j) * b + j;
        if (gj >= n || gj < gi) continue;
        result(gi, gj) = (*tile)(i, j);
      }
    }
  }

  if (stats != nullptr) {
    stats->wall_seconds = wall.seconds();
    stats->waves = waves;
    stats->stages = sc.metrics().num_stages() - stages0;
    stats->collect_bytes = sc.metrics().total_collect_bytes() - collect0;
    stats->broadcast_bytes = sc.metrics().total_broadcast_bytes() - bcast0;
    stats->grid_r = r;
  }
  return result;
}

/// Reconstruct one optimal split tree from a finished table: returns, for
/// every interval examined, the chosen split point; entry point (0, n−1).
template <ParenSpecType Spec>
std::size_t best_split(const Spec& spec,
                       const gs::Matrix<typename Spec::value_type>& table,
                       std::size_t i, std::size_t j) {
  GS_CHECK(j > i + 1);
  std::size_t best_k = i + 1;
  auto best = table(i, best_k) + table(best_k, j) +
              spec.weight(i, best_k, j);
  for (std::size_t k = i + 2; k < j; ++k) {
    const auto cand = table(i, k) + table(k, j) + spec.weight(i, k, j);
    if (cand < best) {
      best = cand;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace paren
