#include "simtime/gep_job_sim.hpp"

#include <algorithm>
#include <unordered_map>

#include "grid/tile_grid.hpp"
#include "sparklet/partitioner.hpp"
#include "support/format.hpp"

namespace simtime {

using gepspark::GridRanges;

ImMoveCounts im_tile_moves(const GridRanges& g, int k, bool uses_w) {
  ImMoveCounts c;
  const auto m = static_cast<std::size_t>(g.num_b(k));
  c.partition_by_a = 1 + g.diag_copy_count(k, uses_w);
  if (m > 0) {
    c.partition_by_bc = 2 * m /*selves*/ + g.rowcol_copy_count(k);
  }
  // combine_bc / combine_d / partition_by_d / repartition: elided (see .hpp).
  return c;
}

CbMoveCounts cb_tile_moves(const GridRanges& g, int k) {
  CbMoveCounts c;
  const auto m = static_cast<std::size_t>(g.num_b(k));
  const auto r = static_cast<std::size_t>(g.r());
  c.collect_tiles = 1 + 2 * m;
  c.broadcast_tiles = 1 + 2 * m;
  c.repartition = r * r;
  return c;
}

std::string SimResult::display() const {
  if (disk_overflow) return "fail";
  if (timeout) return "-";
  return gs::strfmt("%.0f", seconds);
}

namespace {

/// Busiest-executor tile count for a stage updating `keys`, using the real
/// partitioner → partition → executor mapping.
int max_tiles_per_executor(const std::vector<gs::TileKey>& keys,
                           const sparklet::Partitioner& part,
                           int num_executors) {
  std::vector<int> per_exec(static_cast<std::size_t>(num_executors), 0);
  int best = 1;
  for (const auto& key : keys) {
    const int p = part.partition_of(sparklet::key_hash(key));
    const int e = p % num_executors;
    best = std::max(best, ++per_exec[static_cast<std::size_t>(e)]);
  }
  return best;
}

}  // namespace

SimResult simulate_gep_job(const MachineModel& model,
                           const GepJobParams& params) {
  const auto& cluster = model.cluster();
  const auto layout = gs::BlockLayout::for_problem(params.n, params.block);
  const int r = static_cast<int>(layout.r);
  const GridRanges ranges(r, params.strict_sigma);

  const int p = params.rdd_partitions > 0
                    ? params.rdd_partitions
                    : static_cast<int>(cluster.effective_partitions());
  sparklet::PartitionerPtr part;
  if (params.use_grid_partitioner) {
    part = std::make_shared<sparklet::GridPartitioner>(p, r);
  } else {
    part = std::make_shared<sparklet::HashPartitioner>(p);
  }
  const int E = cluster.num_executors();

  // Serialized size of one tile record on a shuffle wire (payload + tile
  // header + key + role tag — matches sparklet's item accounting).
  const double tile_bytes =
      static_cast<double>(params.block) * static_cast<double>(params.block) *
          static_cast<double>(params.value_bytes) +
      73.0;

  SimResult res;
  res.grid_r = r;

  auto add_compute = [&](gs::KernelKind kind, int tiles, int max_per_exec) {
    if (tiles <= 0) return;
    const double s = model.stage_seconds(kind, params.block,
                                         params.strict_sigma, params.kernel,
                                         params.value_bytes, tiles,
                                         max_per_exec, p,
                                         params.update_cost_for(params.kernel));
    // Split out the overhead share for the breakdown.
    const double ovh = model.params().dispatch_s * p + cluster.stage_overhead_s;
    res.compute_s += s - ovh;
    res.overhead_s += ovh;
    res.seconds += s;
    res.stages += 1;
  };
  // A stage whose tasks only repartition data (partitionBy / union).
  auto add_aux_stage = [&] {
    const double ovh = model.params().dispatch_s * p + cluster.stage_overhead_s;
    res.overhead_s += ovh;
    res.seconds += ovh;
    res.stages += 1;
  };
  auto add_shuffle = [&](std::size_t tiles, int source_spread) -> bool {
    if (tiles == 0) return true;
    const double bytes = static_cast<double>(tiles) * tile_bytes;
    if (model.shuffle_staged_per_node(bytes, source_spread) >
        cluster.local_disk.capacity_bytes) {
      res.disk_overflow = true;
      return false;
    }
    const double s = model.shuffle_seconds(bytes, source_spread);
    res.shuffle_s += s;
    res.shuffle_bytes += bytes;
    res.seconds += s;
    return true;
  };
  auto add_collect = [&](std::size_t tiles) {
    const double bytes = static_cast<double>(tiles) * tile_bytes;
    const double s = model.collect_seconds(bytes);
    res.collect_s += s;
    res.collect_bytes += bytes;
    res.seconds += s;
  };
  auto add_broadcast = [&](std::size_t tiles) {
    const double bytes = static_cast<double>(tiles) * tile_bytes;
    const double s = model.broadcast_seconds(bytes);
    res.broadcast_s += s;
    res.broadcast_bytes += bytes * E;  // every executor pulls a copy
    res.seconds += s;
  };

  for (int k = 0; k < r; ++k) {
    const int m = ranges.num_b(k);
    const auto bc_keys = [&] {
      auto keys = ranges.b_keys(k);
      const auto cs = ranges.c_keys(k);
      keys.insert(keys.end(), cs.begin(), cs.end());
      return keys;
    }();
    const auto d_keys = ranges.d_keys(k);

    if (params.strategy == gepspark::Strategy::kInMemory) {
      const ImMoveCounts moves = im_tile_moves(ranges, k, params.uses_w);

      // Stage 1: A kernel + its fan-out repartition (single source task —
      // the GE diag fan-out leaves through one node's NIC and pickler).
      add_compute(gs::KernelKind::A, 1, 1);
      if (!add_shuffle(moves.partition_by_a, /*source_spread=*/1)) break;

      if (m > 0) {
        // Stage 2: B/C kernels (co-partitioned combine elided) + row/col
        // fan-out repartition from the nodes that ran the 2m B/C tasks.
        add_compute(gs::KernelKind::B, 2 * m,
                    max_tiles_per_executor(bc_keys, *part, E));
        if (!add_shuffle(moves.partition_by_bc, std::min(2 * m, E))) break;

        // Stage 3: D kernels; combine, mapPartitions, and the iteration-end
        // union/repartition are all partitioner-preserving → no shuffle.
        add_compute(gs::KernelKind::D, m * m,
                    max_tiles_per_executor(d_keys, *part, E));
      }
    } else {
      const CbMoveCounts moves = cb_tile_moves(ranges, k);

      add_compute(gs::KernelKind::A, 1, 1);
      add_collect(1);
      add_broadcast(1);

      if (m > 0) {
        add_compute(gs::KernelKind::B, 2 * m,
                    max_tiles_per_executor(bc_keys, *part, E));
        add_collect(2 * static_cast<std::size_t>(m));
        add_broadcast(2 * static_cast<std::size_t>(m));

        add_compute(gs::KernelKind::D, m * m,
                    max_tiles_per_executor(d_keys, *part, E));
      }

      // Listing 2's maps drop the partitioner, so the end-of-iteration
      // union + partitionBy physically reshuffles the whole grid.
      if (!add_shuffle(moves.repartition, E)) break;
      add_aux_stage();  // repartition
    }

    if (res.seconds > params.timeout_s) {
      res.timeout = true;
      break;
    }
  }

  return res;
}

}  // namespace simtime
