#include "simtime/machine_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace simtime {

MachineModel::MachineModel(sparklet::ClusterConfig cluster, ModelParams params)
    : cluster_(std::move(cluster)), params_(params) {
  cluster_.validate();
}

double MachineModel::cache_share_bytes() const {
  const auto& node = cluster_.node;
  return node.l2_bytes + node.l3_bytes / node.physical_cores;
}

double MachineModel::kernel_seconds_1t(gs::KernelKind kind, std::size_t block,
                                       bool strict_sigma,
                                       const gs::KernelConfig& kcfg,
                                       std::size_t value_bytes,
                                       double update_cost) const {
  const double updates = gs::kernel_update_count(kind, block, strict_sigma);
  const double base =
      updates * update_cost / cluster_.node.core_updates_per_s;

  double penalty;
  if (kcfg.impl == gs::KernelImpl::kIterative) {
    // k-i-j loop order touches ~3 operand tiles per k sweep.
    const double ws =
        3.0 * static_cast<double>(block) * static_cast<double>(block) *
        static_cast<double>(value_bytes);
    const double ratio = ws / cache_share_bytes();
    penalty = ratio <= 1.0
                  ? 1.0
                  : std::min(params_.iter_penalty_max,
                             std::pow(ratio, params_.iter_penalty_gamma));
  } else if (kcfg.impl == gs::KernelImpl::kTiled) {
    // Cache-AWARE tiling: I/O-efficient iff the inner tile was sized for
    // this machine. Private-cache-resident tiles are safe; tiles that rely
    // on the shared L3 slice are fragile (see task_speedup); mis-sized
    // tiles degrade like the plain loops.
    const double ws_t =
        3.0 * double(kcfg.base_size) * double(kcfg.base_size) *
        double(value_bytes);
    if (ws_t <= cluster_.node.l2_bytes) {
      penalty = 1.08;
    } else if (ws_t <= cache_share_bytes()) {
      penalty = 1.25;
    } else {
      penalty = std::min(params_.iter_penalty_max,
                         std::pow(ws_t / cache_share_bytes(),
                                  params_.iter_penalty_gamma));
    }
  } else {
    penalty = params_.rec_penalty;
  }
  return base * penalty;
}

double MachineModel::task_speedup(const gs::KernelConfig& kcfg,
                                  gs::KernelKind kind,
                                  int active_tasks_on_node, std::size_t block,
                                  std::size_t value_bytes) const {
  const double P = cluster_.node.physical_cores;
  const double a = std::max(1, active_tasks_on_node);
  const double t = std::max(1, kcfg.omp_threads);

  // Combined working sets of concurrent tasks vs L3: memory-bandwidth
  // contention hits every kernel flavour.
  const double ws = 3.0 * double(block) * double(block) * double(value_bytes);
  const double resident = a * ws;
  double contention = 1.0;
  if (resident > cluster_.node.l3_bytes) {
    contention += params_.mem_beta * std::log2(resident / cluster_.node.l3_bytes);
  }

  if (kcfg.impl == gs::KernelImpl::kIterative) {
    return 1.0 / contention;  // Numba-style single-threaded tasks
  }

  // Tiled kernels are not cache-adaptive: their tile was sized assuming a
  // full per-core cache share, so co-running tasks squeeze it out of the
  // shared L3 — extra contention the recursive (cache-adaptive) kernels do
  // not pay [41][44].
  if (kcfg.impl == gs::KernelImpl::kTiled) {
    const double ws_t = 3.0 * double(kcfg.base_size) *
                        double(kcfg.base_size) * double(value_bytes);
    if (ws_t > cluster_.node.l2_bytes && a > 1.0) {
      contention *= 1.0 + 0.15 * std::log2(a);
    }
  }

  // Task-graph parallelism cap of the r_shared-way recursion. Tiled
  // kernels split fully in one level: effectively unbounded task supply.
  const double nb =
      kcfg.impl == gs::KernelImpl::kTiled
          ? double(std::max<std::size_t>(block / std::max<std::size_t>(
                                                     kcfg.base_size, 1),
                                         2))
          : static_cast<double>(std::max<std::size_t>(kcfg.r_shared, 2));
  double cap;
  switch (kind) {
    case gs::KernelKind::A: cap = std::max(1.0, nb * nb / 4.0); break;
    case gs::KernelKind::B:
    case gs::KernelKind::C: cap = std::max(1.0, nb * nb / 2.0); break;
    case gs::KernelKind::D: cap = nb * nb; break;
    default: cap = 1.0; break;
  }

  // Fair-share cores per task, bounded by the thread count.
  const double cores_per_task = std::min(t, std::max(1.0, P / a));
  const double usable = std::min(cores_per_task, cap);
  const double amdahl = 1.0 / (1.0 + params_.amdahl_serial * (usable - 1.0));

  // Oversubscription: a·t threads time-sharing P cores, worse when the
  // load is spread over many competing task processes (a/P high) than when
  // one OpenMP runtime owns the node. Floored: heavily thrashed tasks run
  // slower than serial — the Tables I/II cliff.
  const double load = a * t / P;
  const double oversub =
      load > 1.0
          ? 1.0 + params_.oversub_beta * std::log(load) * (0.5 + a / P)
          : 1.0;

  return std::max(0.25, usable * amdahl / (oversub * contention));
}

double MachineModel::stage_seconds(gs::KernelKind kind, std::size_t block,
                                   bool strict_sigma,
                                   const gs::KernelConfig& kcfg,
                                   std::size_t value_bytes, int tile_tasks,
                                   int max_tiles_per_executor,
                                   int rdd_partitions,
                                   double update_cost) const {
  if (tile_tasks <= 0) return 0.0;
  GS_CHECK(max_tiles_per_executor >= 1);

  const int slots = cluster_.executor_cores;
  // Tasks actually crunching tiles at once on the busiest node.
  const int active = std::min(slots, max_tiles_per_executor);
  const double t1 = kernel_seconds_1t(kind, block, strict_sigma, kcfg,
                                      value_bytes, update_cost);
  const double per_task =
      t1 / task_speedup(kcfg, kind, active, block, value_bytes);
  const int waves = (max_tiles_per_executor + active - 1) / active;

  // All rdd_partitions tasks are dispatched serially by the driver even when
  // their partitions hold no tiles — the paper's small-block overhead.
  const double dispatch = params_.dispatch_s * rdd_partitions;

  return waves * per_task + dispatch + cluster_.stage_overhead_s;
}

double MachineModel::shuffle_seconds(double bytes, int source_spread) const {
  const double wire = bytes * params_.compression;
  const int nodes = cluster_.num_nodes;
  const int spread = std::clamp(source_spread, 1, nodes);
  const auto& disk = cluster_.local_disk;

  // Map-side: serialize + stage on the source nodes' disks. Each map task
  // writes one segment per reduce partition, so a shuffle touches ~p files
  // per node — on spinning disks the seeks alone dominate (the cluster-2
  // effect in Fig. 8).
  const double segments = static_cast<double>(cluster_.effective_partitions());
  const double t_ser = bytes / (params_.serialize_Bps * spread);
  const double per_source = wire / spread;
  const double t_write = disk.seek_s * segments + per_source / disk.write_Bps;

  // Fetch: read the segments back, cross the source NICs, land cluster-wide.
  const double t_read = disk.seek_s * segments + per_source / disk.read_Bps;
  const double remote = nodes > 1 ? double(nodes - 1) / nodes : 0.0;
  const double t_net =
      cluster_.network.latency_s +
      wire * remote / (cluster_.network.bandwidth_Bps * spread);

  return t_ser + t_write + t_read + t_net;
}

double MachineModel::collect_seconds(double bytes) const {
  // Everything funnels through the driver's NIC and its (de)serialization.
  return cluster_.network.latency_s +
         bytes * params_.compression / cluster_.network.bandwidth_Bps +
         bytes / params_.driver_Bps;
}

double MachineModel::broadcast_seconds(double bytes) const {
  const double wire = bytes * params_.compression;
  const auto& fs = cluster_.shared_fs;
  const double t_driver = bytes / params_.driver_Bps;  // tofile() pipeline
  const double t_write = fs.seek_s + wire / fs.write_Bps;
  const double t_read =
      fs.seek_s + wire * cluster_.num_executors() / fs.read_Bps;
  return t_driver + t_write + t_read + cluster_.network.latency_s;
}

double MachineModel::shuffle_staged_per_node(double bytes,
                                             int source_spread) const {
  const int spread = std::clamp(source_spread, 1, cluster_.num_nodes);
  return bytes * params_.compression / spread;
}

}  // namespace simtime
