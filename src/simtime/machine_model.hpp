// machine_model.hpp — calibrated analytic cost model for paper-scale runs.
//
// The real sparklet runtime executes kernels and measures them; this model
// *predicts* the same quantities for problem sizes (32K×32K, 16 nodes, 512
// cores) that cannot run on the test host. Ingredients:
//
//   * kernel compute cost  — update-count(kind, b, Σ) / per-core rate,
//     multiplied by a cache penalty. Iterative kernels stream the whole tile
//     once per k (k-i-j loop order): their penalty grows once the ~3·b²
//     working set leaves the per-core cache share (L2 + L3/P); recursive
//     kernels are cache-oblivious, paying a small constant. This is the
//     paper's §V-C "blocks fit in L2" crossover.
//   * intra-task parallelism — recursive kernels scale with OMP_NUM_THREADS
//     up to the kernel's task-graph parallelism cap and an Amdahl term;
//     iterative kernels are single-threaded (as in the paper, where they are
//     Numba JIT kernels).
//   * node contention — `a` concurrently-active tasks × t threads each on P
//     physical cores: fair-share core split plus a logarithmic
//     oversubscription penalty (the Tables I/II cliff).
//   * data movement — shuffle through local-disk staging plus network with a
//     compression factor (Spark compresses shuffle files); collect through
//     the driver NIC; broadcast through shared storage.
#pragma once

#include <cstddef>

#include "kernels/kernel_config.hpp"
#include "kernels/kernel_kind.hpp"
#include "sparklet/cluster.hpp"

namespace simtime {

struct ModelParams {
  /// Iterative-kernel cache penalty: pen = clamp((ws/cache)^gamma, 1, max).
  double iter_penalty_gamma = 0.47;
  double iter_penalty_max = 8.0;
  /// Recursive kernels' constant factor (recursion overhead; near-oblivious).
  double rec_penalty = 1.12;
  /// Amdahl serial fraction of the recursive kernels' task graphs.
  double amdahl_serial = 0.010;
  /// Oversubscription: slowdown = 1 + beta·ln(load)·(0.5 + a/P) — many
  /// competing task processes schedule worse than few many-threaded ones.
  double oversub_beta = 0.27;
  /// Working-set contention: `a` concurrent tile tasks whose combined ~3b²
  /// working sets overflow L3 become memory-bandwidth bound:
  /// slowdown = 1 + mem_beta·log2(a·ws / L3). Applies to BOTH kernel
  /// flavours (this is what ruins executor-cores=32 rows in Tables I/II
  /// even at OMP_NUM_THREADS=1).
  double mem_beta = 0.12;
  /// Serial driver-side dispatch cost per task of a stage.
  double dispatch_s = 0.30e-3;
  /// Spark shuffle/broadcast compression ratio (bytes on wire / raw bytes).
  double compression = 0.30;
  /// Map-side (de)serialization throughput per executor process — pySpark
  /// pickling; fan-outs that originate from few tasks bottleneck here.
  double serialize_Bps = 1.0e9;
  /// Driver-process byte throughput for collect()/tofile() pipelines (the
  /// CB strategy funnels every pivot tile through this).
  double driver_Bps = 150.0e6;
};

class MachineModel {
 public:
  explicit MachineModel(sparklet::ClusterConfig cluster,
                        ModelParams params = {});

  const sparklet::ClusterConfig& cluster() const { return cluster_; }
  const ModelParams& params() const { return params_; }

  /// Per-core cache share available to one task (L2 + L3/P), bytes.
  double cache_share_bytes() const;

  /// Seconds for one kernel task on a b×b tile, single-threaded.
  /// `update_cost` scales the per-update work relative to min-plus (GE's
  /// x − u·v/w carries an unpipelined divide: ≈ 2.5).
  double kernel_seconds_1t(gs::KernelKind kind, std::size_t block,
                           bool strict_sigma, const gs::KernelConfig& kcfg,
                           std::size_t value_bytes,
                           double update_cost = 1.0) const;

  /// Effective speedup of one task given its OMP thread count, the kernel's
  /// parallelism cap, and `active_tasks` concurrently running on the node
  /// (with their b×b working sets competing for L3/DRAM bandwidth).
  /// Iterative kernels return ≤ 1 (they never parallelize but still suffer
  /// contention).
  double task_speedup(const gs::KernelConfig& kcfg, gs::KernelKind kind,
                      int active_tasks_on_node, std::size_t block,
                      std::size_t value_bytes) const;

  /// Makespan of one compute stage: `tile_tasks` kernel invocations of
  /// `kind` spread over `max_tiles_per_executor` on the busiest executor,
  /// with `rdd_partitions` (mostly empty) tasks dispatched.
  double stage_seconds(gs::KernelKind kind, std::size_t block,
                       bool strict_sigma, const gs::KernelConfig& kcfg,
                       std::size_t value_bytes, int tile_tasks,
                       int max_tiles_per_executor, int rdd_partitions,
                       double update_cost = 1.0) const;

  /// Shuffle of `bytes` whose map outputs originate from `source_spread`
  /// distinct nodes: serialization and the outbound NICs bottleneck on that
  /// spread (spread 1 = the GE pivot fan-out pathology), disk staging and
  /// inbound links use the whole cluster.
  double shuffle_seconds(double bytes, int source_spread) const;

  /// Executors → driver NIC, plus the driver-process pipeline.
  double collect_seconds(double bytes) const;

  /// Driver writes to shared storage; every executor reads it back.
  double broadcast_seconds(double bytes) const;

  /// Per-source-node staged bytes for a shuffle (capacity checks).
  double shuffle_staged_per_node(double bytes, int source_spread) const;

 private:
  sparklet::ClusterConfig cluster_;
  ModelParams params_;
};

}  // namespace simtime
