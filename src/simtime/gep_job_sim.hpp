// gep_job_sim.hpp — paper-scale simulation of the GEP-on-Spark drivers.
//
// Mirrors GepDriver's per-iteration stage structure exactly (the tests
// cross-validate tile-move counts and stage counts against real sparklet
// metrics at small r), but prices each stage with the MachineModel instead
// of executing kernels — which is how the benches regenerate the paper's
// 32K×32K / 16-node tables and figures on a laptop-class host.
//
// Placement is *real*: tiles are assigned to RDD partitions with the actual
// HashPartitioner/GridPartitioner over the actual TileKeys, and partitions
// map to executors the same way sparklet does, so stage imbalance is the
// genuine balls-into-bins behaviour of the paper's "probabilistic default
// partitioner" (§V-B).
#pragma once

#include <string>
#include <vector>

#include "gepspark/copy_plan.hpp"
#include "gepspark/options.hpp"
#include "kernels/kernel_config.hpp"
#include "simtime/machine_model.hpp"

namespace simtime {

struct GepJobParams {
  std::size_t n = 32768;       ///< DP table side
  std::size_t block = 1024;    ///< tile side b (grid r = ceil(n/b))
  bool strict_sigma = false;   ///< GE-style Σ (false = FW/TC)
  bool uses_w = false;         ///< f reads c[k,k] (true for GE)
  gepspark::Strategy strategy = gepspark::Strategy::kInMemory;
  gs::KernelConfig kernel = gs::KernelConfig::iterative();
  std::size_t value_bytes = 8;
  int rdd_partitions = 0;      ///< 0 → 2 × total cores
  bool use_grid_partitioner = false;
  double timeout_s = 8.0 * 3600.0;  ///< the paper's 8-hour experiment cap

  /// Per-update cost relative to min-plus, per kernel implementation. GE's
  /// f carries a divide: the Numba-style iterative kernels cannot hoist the
  /// reciprocal (≈3×), the C/OpenMP recursive kernels mostly can (≈1.3×).
  double update_cost_iter = 1.0;
  double update_cost_rec = 1.0;

  double update_cost_for(const gs::KernelConfig& k) const {
    return k.impl == gs::KernelImpl::kIterative ? update_cost_iter
                                                : update_cost_rec;
  }

  /// Convenience constructors for the two paper benchmarks.
  static GepJobParams fw_apsp(std::size_t n, std::size_t block) {
    GepJobParams p;
    p.n = n;
    p.block = block;
    p.strict_sigma = false;
    p.uses_w = false;
    return p;
  }
  static GepJobParams ge(std::size_t n, std::size_t block) {
    GepJobParams p;
    p.n = n;
    p.block = block;
    p.strict_sigma = true;
    p.uses_w = true;
    p.update_cost_iter = 3.5;
    p.update_cost_rec = 1.3;
    return p;
  }
};

/// Tile moves through each wide hop of one IM iteration (paper Listing 1 as
/// realized by GepDriver::solve_im). Counts are exact and test-validated.
///
/// With pySpark-faithful partitioner handling, only two hops physically
/// shuffle per iteration: the two fan-out repartitions after the A and B/C
/// flatMaps (changed keys). The combineByKeys see co-partitioned input
/// (partitioner-aware unions), DRecGE's mapPartitions preserves
/// partitioning, and the end-of-iteration union is partitioner-aware — so
/// those hops are elided (footnote 1 of the paper). The elided fields are
/// kept at 0 to document the pipeline.
struct ImMoveCounts {
  std::size_t partition_by_a = 0;   ///< A's self + diag fan-out (1 source task)
  std::size_t combine_bc = 0;       ///< elided: co-partitioned union
  std::size_t partition_by_bc = 0;  ///< B/C selves + row/col fan-out
  std::size_t combine_d = 0;        ///< elided: co-partitioned union
  std::size_t partition_by_d = 0;   ///< elided: preserves-partitioning map
  std::size_t repartition = 0;      ///< elided: partitioner-aware union

  std::size_t total() const {
    return partition_by_a + combine_bc + partition_by_bc + combine_d +
           partition_by_d + repartition;
  }
};

ImMoveCounts im_tile_moves(const gepspark::GridRanges& g, int k, bool uses_w);

/// Data movement of one CB iteration (paper Listing 2).
struct CbMoveCounts {
  std::size_t collect_tiles = 0;    ///< pivot + pivot row/column to driver
  std::size_t broadcast_tiles = 0;  ///< same tiles out through shared storage
  std::size_t repartition = 0;      ///< whole grid reunion (the single shuffle)
};

CbMoveCounts cb_tile_moves(const gepspark::GridRanges& g, int k);

struct SimResult {
  double seconds = 0.0;
  bool timeout = false;
  bool disk_overflow = false;

  // breakdown
  double compute_s = 0.0;
  double shuffle_s = 0.0;
  double collect_s = 0.0;
  double broadcast_s = 0.0;
  double overhead_s = 0.0;  ///< task dispatch + stage barriers

  double shuffle_bytes = 0.0;
  double collect_bytes = 0.0;
  double broadcast_bytes = 0.0;

  int grid_r = 0;
  int stages = 0;

  bool ok() const { return !timeout && !disk_overflow; }
  /// "-" in the paper's plots: timed-out or failed runs.
  std::string display() const;
};

/// Simulate one full solve. Never throws for capacity/timeout — those are
/// reported in the result the way the paper reports missing bars.
SimResult simulate_gep_job(const MachineModel& model, const GepJobParams& params);

}  // namespace simtime
