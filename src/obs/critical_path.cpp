#include "obs/critical_path.hpp"

#include <algorithm>
#include <ostream>

#include "support/format.hpp"

namespace obs {

CriticalPathReport analyze_critical_path(
    const sparklet::VirtualTimeline& timeline, std::size_t record_begin,
    std::size_t record_end, std::size_t top_n) {
  CriticalPathReport report;
  const auto& records = timeline.stages();
  record_end = std::min(record_end, records.size());
  if (record_begin >= record_end) return report;

  const double lanes = static_cast<double>(timeline.num_executors()) *
                       static_cast<double>(timeline.slots_per_executor());

  // Per-stage task occupancy, indexed by stage record.
  std::vector<double> busy(records.size(), 0.0);
  std::vector<double> longest(records.size(), 0.0);
  for (const auto& span : timeline.task_spans()) {
    const auto i = static_cast<std::size_t>(span.stage_index);
    if (i < record_begin || i >= record_end) continue;
    const double d = span.end_s - span.start_s;
    busy[i] += d;
    longest[i] = std::max(longest[i], d);
  }

  std::vector<StageCost> costs;
  costs.reserve(record_end - record_begin);
  for (std::size_t i = record_begin; i < record_end; ++i) {
    const auto& rec = records[i];
    StageCost c;
    c.name = rec.name;
    c.category = rec.category;
    c.seconds = rec.duration();
    c.num_tasks = rec.num_tasks;
    report.buckets.of(rec.category) += c.seconds;
    if (rec.num_tasks > 0) {
      c.critical_task_s = longest[i];
      c.idle_s = lanes * c.seconds - busy[i];
      report.barrier_s += c.seconds;
      report.busy_s += busy[i];
      report.idle_s += c.idle_s;
    } else {
      report.serial_s += c.seconds;
    }
    costs.push_back(std::move(c));
  }
  report.window_s = records[record_end - 1].end_s - records[record_begin].start_s;

  std::stable_sort(costs.begin(), costs.end(),
                   [](const StageCost& a, const StageCost& b) {
                     return a.seconds > b.seconds;
                   });
  if (costs.size() > top_n) costs.resize(top_n);
  report.top = std::move(costs);
  return report;
}

CriticalPathReport analyze_critical_path(
    const sparklet::VirtualTimeline& timeline, std::size_t top_n) {
  return analyze_critical_path(timeline, 0, timeline.stages().size(), top_n);
}

void CriticalPathReport::print(std::ostream& os) const {
  os << gs::strfmt(
      "critical path: %s virtual  (barrier %s, driver-serial %s, "
      "lane utilization %.0f%%)\n",
      gs::human_seconds(window_s).c_str(), gs::human_seconds(barrier_s).c_str(),
      gs::human_seconds(serial_s).c_str(), 100.0 * utilization());
  auto pct = [&](double s) { return window_s > 0.0 ? 100.0 * s / window_s : 0.0; };
  os << gs::strfmt(
      "  by category: compute %.1f%% | shuffle %.1f%% | collect %.1f%% | "
      "broadcast %.1f%% | recovery %.1f%% | stall %.1f%%  "
      "(%.1f%% attributed)\n",
      pct(buckets.compute_s), pct(buckets.shuffle_s), pct(buckets.collect_s),
      pct(buckets.broadcast_s), pct(buckets.recovery_s), pct(buckets.stall_s),
      100.0 * attributed_fraction());
  if (buckets.spill_s > 0.0 || buckets.readback_s > 0.0) {
    os << gs::strfmt("  storage tiers: spill %.1f%% | readback %.1f%%\n",
                     pct(buckets.spill_s), pct(buckets.readback_s));
  }
  if (!top.empty()) {
    os << "  costliest records:\n";
    for (const auto& c : top) {
      if (c.num_tasks > 0) {
        os << gs::strfmt(
            "    %-28s %-9s %9s  tasks=%-4d critical-task=%s idle=%s\n",
            c.name.c_str(), sparklet::time_category_name(c.category),
            gs::human_seconds(c.seconds).c_str(), c.num_tasks,
            gs::human_seconds(c.critical_task_s).c_str(),
            gs::human_seconds(c.idle_s).c_str());
      } else {
        os << gs::strfmt("    %-28s %-9s %9s  (driver-serial)\n",
                         c.name.c_str(),
                         sparklet::time_category_name(c.category),
                         gs::human_seconds(c.seconds).c_str());
      }
    }
  }
}

}  // namespace obs
