#include "obs/job_profile.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "support/format.hpp"

namespace obs {

double& PhaseBuckets::of(sparklet::TimeCategory category) {
  switch (category) {
    case sparklet::TimeCategory::kCompute: return compute_s;
    case sparklet::TimeCategory::kShuffle: return shuffle_s;
    case sparklet::TimeCategory::kCollect: return collect_s;
    case sparklet::TimeCategory::kBroadcast: return broadcast_s;
    case sparklet::TimeCategory::kRecovery: return recovery_s;
    case sparklet::TimeCategory::kStall: return stall_s;
    case sparklet::TimeCategory::kSpill: return spill_s;
    case sparklet::TimeCategory::kReadback: return readback_s;
  }
  return compute_s;
}

double PhaseBuckets::of(sparklet::TimeCategory category) const {
  return const_cast<PhaseBuckets*>(this)->of(category);
}

const char* gep_phase_name(GepPhase phase) {
  switch (phase) {
    case GepPhase::kA: return "A";
    case GepPhase::kBC: return "BC";
    case GepPhase::kD: return "D";
    case GepPhase::kPrep: return "prep";
    case GepPhase::kOther: return "other";
  }
  return "?";
}

double& GepPhaseSeconds::of(GepPhase phase) {
  switch (phase) {
    case GepPhase::kA: return a_s;
    case GepPhase::kBC: return bc_s;
    case GepPhase::kD: return d_s;
    case GepPhase::kPrep: return prep_s;
    case GepPhase::kOther: return other_s;
  }
  return other_s;
}

double GepPhaseSeconds::of(GepPhase phase) const {
  return const_cast<GepPhaseSeconds*>(this)->of(phase);
}

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

GepPhase classify_gep_phase(std::string_view label) {
  // Strip decoration suffixes the runtime appends: "(elided)", "(aware)",
  // "(local)", "(recompute)".
  while (!label.empty() && label.back() == ')') {
    const std::size_t open = label.rfind('(');
    if (open == std::string_view::npos) break;
    label = label.substr(0, open);
  }
  if (label == "DBatchGE") return GepPhase::kD;  // fused D batch tasks
  if (ends_with(label, "RecGE")) label.remove_suffix(5);  // {A,BC,D}RecGE
  if (label.empty()) return GepPhase::kOther;
  if (ends_with(label, "BC")) return GepPhase::kBC;
  if (ends_with(label, "D")) return GepPhase::kD;
  if (ends_with(label, "A")) return GepPhase::kA;
  if (label == "FilterPrev" || label == "unionIter" || label == "repartition" ||
      label == "DP" || label == "gatherResult" || label == "checkpoint" ||
      label == "parallelize") {
    return GepPhase::kPrep;
  }
  return GepPhase::kOther;
}

JobProfile build_job_profile(const sparklet::MetricsDelta& delta,
                             const sparklet::VirtualTimeline& timeline,
                             const Tracer* tracer) {
  JobProfile p;
  p.virtual_seconds = delta.virtual_seconds;
  p.stages = delta.stages;
  p.tasks = delta.tasks;
  p.shuffle_bytes = delta.shuffle_write_bytes;
  p.collect_bytes = delta.collect_bytes;
  p.broadcast_bytes = delta.broadcast_bytes;
  p.recovery = delta.recovery;
  p.record_begin = delta.record_begin;
  p.record_end = delta.record_end;

  // Iteration windows from kIteration spans that fall inside the capture.
  struct Window {
    double begin_s;
    double end_s;
    std::int64_t k;
  };
  std::vector<Window> windows;
  if (tracer != nullptr) {
    p.spans_recorded = tracer->recorded();
    p.spans_dropped = tracer->dropped();
    constexpr double kEps = 1e-9;
    for (const Span& s : tracer->spans()) {
      if (s.level != SpanLevel::kIteration || !s.has_virtual()) continue;
      if (s.virt_start_s < delta.virtual_begin_s - kEps ||
          s.virt_end_s > delta.virtual_end_s + kEps) {
        continue;  // from an earlier capture on the same context
      }
      windows.push_back({s.virt_start_s, s.virt_end_s, s.index});
    }
    std::sort(windows.begin(), windows.end(),
              [](const Window& a, const Window& b) {
                return a.begin_s < b.begin_s;
              });
  }
  auto iteration_of = [&](double t) -> std::int64_t {
    // Iteration spans are disjoint in virtual time (driver-side, serial), so
    // a linear scan over the sorted windows with upper_bound is exact.
    auto it = std::upper_bound(
        windows.begin(), windows.end(), t,
        [](double v, const Window& w) { return v < w.begin_s; });
    if (it == windows.begin()) return -1;
    --it;
    return t <= it->end_s + 1e-9 ? it->k : -1;
  };

  std::map<std::int64_t, IterationProfile> per_iter;
  const auto& records = timeline.stages();
  const std::size_t end = std::min(delta.record_end, records.size());
  for (std::size_t i = delta.record_begin; i < end; ++i) {
    const auto& rec = records[i];
    const double dur = rec.duration();
    p.buckets.of(rec.category) += dur;
    GepPhase phase = GepPhase::kOther;
    if (rec.category == sparklet::TimeCategory::kCompute) {
      // Serial compute records (per-stage scheduler latency) count as prep;
      // task stages classify by label.
      phase = rec.num_tasks > 0 ? classify_gep_phase(rec.name) : GepPhase::kPrep;
      p.phases.of(phase) += dur;
    }
    if (!windows.empty()) {
      const double mid = 0.5 * (rec.start_s + rec.end_s);
      IterationProfile& ip = per_iter[iteration_of(mid)];
      ip.virtual_seconds += dur;
      ip.buckets.of(rec.category) += dur;
      if (rec.category == sparklet::TimeCategory::kCompute) {
        ip.phases.of(phase) += dur;
      }
    }
  }
  for (auto& [k, ip] : per_iter) {
    ip.k = k;
    p.iterations.push_back(ip);
  }
  return p;
}

void JobProfile::print(std::ostream& os) const {
  os << gs::strfmt("profile: %s\n", job.empty() ? "(unnamed job)" : job.c_str());
  os << gs::strfmt("  wall %s  virtual %s  %d stages / %d tasks%s\n",
                   gs::human_seconds(wall_seconds).c_str(),
                   gs::human_seconds(virtual_seconds).c_str(), stages, tasks,
                   grid_r > 0 ? gs::strfmt("  (%dx%d grid)", grid_r, grid_r)
                                    .c_str()
                              : "");
  auto pct = [&](double s) {
    return virtual_seconds > 0.0 ? 100.0 * s / virtual_seconds : 0.0;
  };
  os << gs::strfmt(
      "  breakdown: compute %.1f%% | shuffle %.1f%% | collect %.1f%% | "
      "broadcast %.1f%% | recovery %.1f%% | stall %.1f%%  "
      "(%.1f%% attributed)\n",
      pct(buckets.compute_s), pct(buckets.shuffle_s), pct(buckets.collect_s),
      pct(buckets.broadcast_s), pct(buckets.recovery_s), pct(buckets.stall_s),
      100.0 * attributed_fraction());
  if (buckets.spill_s > 0.0 || buckets.readback_s > 0.0) {
    os << gs::strfmt("  storage tiers: spill %.1f%% | readback %.1f%%\n",
                     pct(buckets.spill_s), pct(buckets.readback_s));
  }
  if (phases.total() > 0.0) {
    auto cpct = [&](double s) {
      return phases.total() > 0.0 ? 100.0 * s / phases.total() : 0.0;
    };
    os << gs::strfmt(
        "  compute by phase: A %.1f%% | B/C %.1f%% | D %.1f%% | prep %.1f%% | "
        "other %.1f%%\n",
        cpct(phases.a_s), cpct(phases.bc_s), cpct(phases.d_s),
        cpct(phases.prep_s), cpct(phases.other_s));
  }
  os << gs::strfmt("  bytes: shuffle %s, collect %s, broadcast %s\n",
                   gs::human_bytes(double(shuffle_bytes)).c_str(),
                   gs::human_bytes(double(collect_bytes)).c_str(),
                   gs::human_bytes(double(broadcast_bytes)).c_str());
  if (!iterations.empty()) {
    os << gs::strfmt("  iterations traced: %zu (spans: %zu recorded, %zu "
                     "dropped)\n",
                     iterations.size(), spans_recorded, spans_dropped);
  }
  if (recovery.task_failures || recovery.executor_kills ||
      recovery.fetch_failures || recovery.partitions_recomputed ||
      recovery.checkpoint_blocks) {
    os << gs::strfmt(
        "  recovery: %d task failures, %d executor kills, %d fetch failures, "
        "%d partitions recomputed, %d checkpoint blocks\n",
        recovery.task_failures, recovery.executor_kills,
        recovery.fetch_failures, recovery.partitions_recomputed,
        recovery.checkpoint_blocks);
  }
  if (recovery.spilled_blocks || recovery.spill_readbacks ||
      recovery.corrupt_spills || recovery.spill_write_failures) {
    os << gs::strfmt(
        "  storage: %d blocks spilled (%s), %d readbacks (%s), %d corrupt "
        "spills, %d refused spill writes\n",
        recovery.spilled_blocks,
        gs::human_bytes(double(recovery.spilled_bytes)).c_str(),
        recovery.spill_readbacks,
        gs::human_bytes(double(recovery.spill_readback_bytes)).c_str(),
        recovery.corrupt_spills, recovery.spill_write_failures);
  }
}

}  // namespace obs
