#pragma once
// Critical-path analysis over the virtual-timeline stage DAG.
//
// sparklet stages are barrier-synchronized: the timeline is a chain of
// records (task stages + driver-serial segments), so the critical path of
// the whole job is the chain itself, and the interesting structure is
// *within* stages — the longest task chain (the stage's makespan) versus
// lane idleness (imbalance) — and *across* the chain: which stages and
// which categories dominate.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/job_profile.hpp"
#include "sparklet/virtual_timeline.hpp"

namespace obs {

/// One timeline record's contribution to the job's makespan.
struct StageCost {
  std::string name;
  sparklet::TimeCategory category = sparklet::TimeCategory::kCompute;
  double seconds = 0.0;         ///< barrier-to-barrier duration
  int num_tasks = 0;            ///< 0 = driver-serial segment
  double critical_task_s = 0.0; ///< longest single task occupancy
  double idle_s = 0.0;          ///< lane-slack behind the barrier
};

struct CriticalPathReport {
  double window_s = 0.0;   ///< virtual time covered by the analyzed records
  PhaseBuckets buckets;    ///< makespan split by category
  double serial_s = 0.0;   ///< driver-serial records (no tasks)
  double barrier_s = 0.0;  ///< task stages
  double idle_s = 0.0;     ///< total lane-slack across task stages
  double busy_s = 0.0;     ///< total task occupancy (sum over lanes)
  std::vector<StageCost> top;  ///< costliest records, descending

  double attributed_fraction() const {
    return window_s > 0.0 ? buckets.total() / window_s : 1.0;
  }
  /// Mean lane utilization across task stages (busy / (lanes × barrier)).
  double utilization() const {
    const double cap = busy_s + idle_s;
    return cap > 0.0 ? busy_s / cap : 0.0;
  }

  void print(std::ostream& os) const;
};

/// Analyze records [record_begin, record_end) of the timeline (use the
/// window a JobProfile carries to scope the report to one job).
CriticalPathReport analyze_critical_path(
    const sparklet::VirtualTimeline& timeline, std::size_t record_begin,
    std::size_t record_end, std::size_t top_n = 10);

/// Whole-timeline convenience overload.
CriticalPathReport analyze_critical_path(
    const sparklet::VirtualTimeline& timeline, std::size_t top_n = 10);

}  // namespace obs
