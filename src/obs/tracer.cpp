#include "obs/span.hpp"

#include <algorithm>
#include <utility>

namespace obs {
namespace {

// Per-thread stack of open spans, keyed by tracer so several contexts can
// trace concurrently from the same pool threads.
struct OpenSpan {
  const Tracer* tracer;
  std::uint64_t id;
};
thread_local std::vector<OpenSpan> tls_open_spans;
thread_local int tls_thread_ordinal = -1;

std::uint64_t innermost_open(const Tracer* tracer) {
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend(); ++it) {
    if (it->tracer == tracer) return it->id;
  }
  return 0;
}

}  // namespace

const char* span_level_name(SpanLevel level) {
  switch (level) {
    case SpanLevel::kJob: return "job";
    case SpanLevel::kIteration: return "iteration";
    case SpanLevel::kPhase: return "phase";
    case SpanLevel::kAction: return "action";
    case SpanLevel::kStage: return "stage";
    case SpanLevel::kTask: return "task";
    case SpanLevel::kKernel: return "kernel";
  }
  return "?";
}

void Tracer::set_capacity(std::size_t max_spans) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = std::max<std::size_t>(1, max_spans);
  if (ring_.size() > ring_capacity_) {
    // Keep the newest spans; order within ring_ is rebuilt oldest-first.
    std::vector<Span> keep;
    keep.reserve(ring_capacity_);
    const std::size_t n = ring_.size();
    for (std::size_t i = n - ring_capacity_; i < n; ++i) {
      keep.push_back(std::move(ring_[(write_pos_ + i) % n]));
    }
    dropped_ += n - ring_capacity_;
    ring_ = std::move(keep);
    write_pos_ = 0;
  }
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

void Tracer::set_virtual_clock(std::function<double()> now) {
  std::lock_guard<std::mutex> lock(mu_);
  virtual_clock_ = std::move(now);
}

double Tracer::virtual_now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_clock_ ? virtual_clock_() : -1.0;
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  if (ring_.size() < ring_capacity_) {
    out = ring_;  // not yet wrapped: already oldest-first
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(write_pos_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::size_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  write_pos_ = 0;
  committed_ = 0;
  dropped_ = 0;
}

void Tracer::commit(Span&& span) {
  std::lock_guard<std::mutex> lock(mu_);
  ++committed_;
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[write_pos_] = std::move(span);
    write_pos_ = (write_pos_ + 1) % ring_.size();
    ++dropped_;
  }
}

int Tracer::thread_ordinal() {
  if (tls_thread_ordinal < 0) {
    tls_thread_ordinal = next_thread_.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_ordinal;
}

ScopedSpan::ScopedSpan(Tracer* tracer, SpanLevel level, std::string_view name,
                       std::int64_t index) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  span_.id = tracer->next_id();
  span_.level = level;
  span_.name.assign(name.data(), name.size());
  span_.index = index;
  span_.thread = tracer->thread_ordinal();
  span_.parent = innermost_open(tracer);
  if (span_.parent == 0) span_.parent = tracer->cross_thread_parent();
  if (level <= SpanLevel::kStage) {
    // Driver-side span: the virtual clock only advances on this thread, so
    // snapshotting it here is race-free. Publish ourselves as the adoption
    // point for task spans opened on pool threads while we are open.
    span_.virt_start_s = tracer->virtual_now();
    saved_hint_ = tracer->cross_thread_parent();
    tracer->set_cross_thread_parent(span_.id);
    published_hint_ = true;
  }
  span_.wall_start_s = tracer->wall_now();
  tls_open_spans.push_back({tracer, span_.id});
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  span_.wall_end_s = tracer_->wall_now();
  if (span_.has_virtual()) span_.virt_end_s = tracer_->virtual_now();
  if (published_hint_) tracer_->set_cross_thread_parent(saved_hint_);
  // Scoped construction/destruction means we are the innermost entry for
  // this tracer on this thread; erase from the back.
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend(); ++it) {
    if (it->tracer == tracer_ && it->id == span_.id) {
      tls_open_spans.erase(std::next(it).base());
      break;
    }
  }
  tracer_->commit(std::move(span_));
}

}  // namespace obs
