#pragma once
// JobProfile — structured aggregation of one job's execution: virtual-time
// bucket breakdown (compute / shuffle / collect / broadcast / recovery /
// stall),
// GEP-phase attribution of compute time, per-iteration slices (when the
// tracer ran), byte counters, and recovery work. Built from a MetricsDelta
// (scoped counter capture) + the matching VirtualTimeline window, optionally
// refined with tracer spans.
//
// The timeline records partition virtual time exactly — every record carries
// one TimeCategory — so attributed_fraction() is 1.0 up to floating-point
// rounding. The ≥95% acceptance bound leaves headroom for future charges
// that bypass the timeline.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"
#include "sparklet/metrics.hpp"
#include "sparklet/virtual_timeline.hpp"

namespace obs {

/// Virtual seconds split by TimeCategory.
struct PhaseBuckets {
  double compute_s = 0.0;
  double shuffle_s = 0.0;
  double collect_s = 0.0;
  double broadcast_s = 0.0;
  double recovery_s = 0.0;
  double stall_s = 0.0;  ///< dataflow ready-wait (lanes idle on dependencies)
  double spill_s = 0.0;     ///< storage-ladder demotion writes to disk
  double readback_s = 0.0;  ///< reloading demoted blocks (decode / disk read)

  double total() const {
    return compute_s + shuffle_s + collect_s + broadcast_s + recovery_s +
           stall_s + spill_s + readback_s;
  }
  double& of(sparklet::TimeCategory category);
  double of(sparklet::TimeCategory category) const;
};

/// GEP phase a sparklet stage label belongs to, per the driver's labeling
/// scheme (FilterA/ARecGE/partitionByA/…, *BC, *D).
enum class GepPhase : std::uint8_t {
  kA = 0,     ///< pivot block
  kBC = 1,    ///< pivot row + column
  kD = 2,     ///< trailing submatrix
  kPrep = 3,  ///< iteration plumbing: union/repartition/persist/input
  kOther = 4,
};

const char* gep_phase_name(GepPhase phase);

/// Classify a stage label; strips decoration suffixes ("(elided)",
/// "(recompute)", …) first. Labels that are not GEP driver labels land in
/// kOther — the profile stays correct for arbitrary sparklet jobs, it just
/// has nothing to say about their phases.
GepPhase classify_gep_phase(std::string_view label);

/// Compute-bucket seconds split by GEP phase.
struct GepPhaseSeconds {
  double a_s = 0.0;
  double bc_s = 0.0;
  double d_s = 0.0;
  double prep_s = 0.0;
  double other_s = 0.0;

  double total() const { return a_s + bc_s + d_s + prep_s + other_s; }
  double& of(GepPhase phase);
  double of(GepPhase phase) const;
};

/// One outer iteration's slice of the job (requires the tracer: iteration
/// windows come from kIteration spans' virtual intervals).
struct IterationProfile {
  std::int64_t k = -1;  ///< -1: outside any iteration (setup/gather)
  double virtual_seconds = 0.0;
  PhaseBuckets buckets;
  GepPhaseSeconds phases;
};

struct JobProfile {
  std::string job;  ///< free-form description (driver config string)
  /// Serve-layer attribution: which tenant submitted the job and the
  /// server-assigned job id. Empty / -1 for one-shot (non-served) solves;
  /// exported inside the JSON "job" object only when set, so the v3 schema
  /// is unchanged for existing consumers.
  std::string tenant;
  std::int64_t job_id = -1;
  double wall_seconds = 0.0;
  double virtual_seconds = 0.0;
  int stages = 0;
  int tasks = 0;
  int grid_r = 0;  ///< r×r tile grid (0 when not a GEP job)
  std::size_t shuffle_bytes = 0;
  std::size_t collect_bytes = 0;
  std::size_t broadcast_bytes = 0;
  PhaseBuckets buckets;
  GepPhaseSeconds phases;  ///< split of buckets.compute_s
  std::vector<IterationProfile> iterations;  ///< empty when tracing was off
  sparklet::RecoveryCounters recovery;
  std::size_t spans_recorded = 0;
  std::size_t spans_dropped = 0;
  /// Timeline window this profile covers (indices into timeline.stages());
  /// lets callers run the critical-path analyzer over the same slice.
  std::size_t record_begin = 0;
  std::size_t record_end = 0;

  /// Fraction of virtual_seconds landing in the six buckets.
  double attributed_fraction() const {
    return virtual_seconds > 0.0 ? buckets.total() / virtual_seconds : 1.0;
  }

  void print(std::ostream& os) const;
};

/// Aggregate a scoped capture into a JobProfile. `tracer` is optional; when
/// given (and it ran during the capture), per-iteration slices are derived
/// from kIteration spans' virtual windows. wall_seconds/job/grid_r are the
/// caller's to fill — they are not derivable from the delta.
JobProfile build_job_profile(const sparklet::MetricsDelta& delta,
                             const sparklet::VirtualTimeline& timeline,
                             const Tracer* tracer = nullptr);

}  // namespace obs
