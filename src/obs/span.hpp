#pragma once
// Span-based tracer for the sparklet runtime.
//
// A Span is one timed region of the job; spans nest job -> iteration(k) ->
// phase(A/B/C/D) -> stage -> task -> kernel, mirroring how the GEP driver
// decomposes work. Spans record *wall* time always; driver-side levels
// (job..stage) additionally record *virtual* time, the simulated cluster
// clock of VirtualTimeline. Task/kernel spans run on pool threads while the
// driver-side virtual clock is being advanced, so they carry wall time only
// (virt_start_s < 0 marks "no virtual window").
//
// The tracer lives in this layer (below sparklet) so SparkContext can own
// one; it depends only on src/support. The virtual clock is injected via
// set_virtual_clock() rather than including the timeline header here.
//
// Define GS_OBS_DISABLE_TRACING to compile tracing out entirely: enabled()
// becomes a constant false and every ScopedSpan constructor reduces to a
// single branch on it.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/stopwatch.hpp"

namespace obs {

enum class SpanLevel : std::uint8_t {
  kJob = 0,
  kIteration = 1,  ///< one outer GEP iteration; index = k
  kPhase = 2,      ///< A / BC / D / persist within an iteration
  kAction = 3,     ///< one RDD action (collect/cache/checkpoint/…)
  kStage = 4,      ///< one sparklet stage materialization; index = stage id
  kTask = 5,       ///< one task attempt on a pool thread; index = partition
  kKernel = 6,     ///< one tile-kernel application inside a task
};

const char* span_level_name(SpanLevel level);

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  SpanLevel level = SpanLevel::kJob;
  std::string name;
  std::int64_t index = -1;  ///< level-specific: k, stage id, partition, ...
  int thread = 0;           ///< tracer-local thread ordinal (0 = first seen)
  double wall_start_s = 0.0;
  double wall_end_s = 0.0;
  double virt_start_s = -1.0;  ///< < 0: span has no virtual window
  double virt_end_s = -1.0;

  bool has_virtual() const { return virt_start_s >= 0.0; }
  double wall_seconds() const { return wall_end_s - wall_start_s; }
  double virt_seconds() const {
    return has_virtual() ? virt_end_s - virt_start_s : 0.0;
  }
};

/// Thread-safe span sink with a bounded ring buffer. Disabled by default;
/// when disabled, ScopedSpan does no work beyond one atomic load.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const {
#ifdef GS_OBS_DISABLE_TRACING
    return false;
#else
    return enabled_.load(std::memory_order_acquire);
#endif
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }

  /// Max completed spans retained; older spans are overwritten once full.
  void set_capacity(std::size_t max_spans);
  std::size_t capacity() const;

  /// Clock used for virt_start_s/virt_end_s on driver-side spans.
  void set_virtual_clock(std::function<double()> now);

  /// Completed spans, oldest first. Copies under the lock.
  std::vector<Span> spans() const;
  /// Total spans ever committed (including ones since overwritten).
  std::size_t recorded() const;
  /// Spans overwritten because the ring was full.
  std::size_t dropped() const;
  /// Drop all completed spans and reset counters (ids keep increasing).
  void clear();

  // -- internals used by ScopedSpan ----------------------------------------
  std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  double wall_now() const { return epoch_.seconds(); }
  double virtual_now() const;
  /// Cross-thread parent hint: the innermost open driver-side span. Task
  /// spans opened on pool threads (whose local stack is empty) adopt it.
  std::uint64_t cross_thread_parent() const {
    return cross_thread_parent_.load(std::memory_order_acquire);
  }
  void set_cross_thread_parent(std::uint64_t id) {
    cross_thread_parent_.store(id, std::memory_order_release);
  }
  void commit(Span&& span);
  /// Small dense per-tracer thread ordinal for the calling thread.
  int thread_ordinal();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> cross_thread_parent_{0};
  std::atomic<int> next_thread_{0};
  gs::Stopwatch epoch_;

  mutable std::mutex mu_;
  std::function<double()> virtual_clock_;  // guarded by mu_
  std::vector<Span> ring_;                 // guarded by mu_
  std::size_t ring_capacity_ = kDefaultCapacity;
  std::size_t write_pos_ = 0;  // next overwrite slot once the ring is full
  std::size_t committed_ = 0;
  std::size_t dropped_ = 0;
};

/// RAII span. Pass a null tracer (or a disabled one) and the constructor is
/// a no-op — safe to place on hot paths unconditionally.
///
/// Parenting: each thread keeps a stack of open spans per tracer; a new span
/// parents to the innermost open span on its own thread, falling back to the
/// tracer's cross-thread hint (set by driver-side spans) so task spans on
/// pool threads nest under the stage that launched them.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, SpanLevel level, std::string_view name,
             std::int64_t index = -1);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t id() const { return span_.id; }

 private:
  Tracer* tracer_ = nullptr;
  Span span_;
  std::uint64_t saved_hint_ = 0;
  bool published_hint_ = false;
};

}  // namespace obs
