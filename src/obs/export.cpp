#include "obs/export.hpp"

#include <fstream>
#include <ostream>

#include "support/check.hpp"
#include "support/format.hpp"

namespace obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += gs::strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream f(path);
  GS_CHECK_MSG(f.good(), "cannot open output: " + path);
  return f;
}

}  // namespace

void write_profile_json(const JobProfile& p, std::ostream& out) {
  out << "{\n";
  out << gs::strfmt("  \"schema\": \"%s\",\n", kProfileJsonSchema);
  std::string serve_tag;
  if (!p.tenant.empty() || p.job_id >= 0) {
    serve_tag = gs::strfmt(", \"tenant\": \"%s\", \"job_id\": %lld",
                           json_escape(p.tenant).c_str(),
                           static_cast<long long>(p.job_id));
  }
  out << gs::strfmt(
      "  \"job\": {\"config\": \"%s\", \"wall_seconds\": %.9g, "
      "\"virtual_seconds\": %.9g, \"grid_r\": %d, \"stages\": %d, "
      "\"tasks\": %d%s},\n",
      json_escape(p.job).c_str(), p.wall_seconds, p.virtual_seconds, p.grid_r,
      p.stages, p.tasks, serve_tag.c_str());
  out << gs::strfmt(
      "  \"bytes\": {\"shuffle\": %zu, \"collect\": %zu, \"broadcast\": "
      "%zu},\n",
      p.shuffle_bytes, p.collect_bytes, p.broadcast_bytes);
  out << gs::strfmt(
      "  \"breakdown\": {\"compute_s\": %.9g, \"shuffle_s\": %.9g, "
      "\"collect_s\": %.9g, \"broadcast_s\": %.9g, \"recovery_s\": %.9g, "
      "\"stall_s\": %.9g, \"spill_s\": %.9g, \"readback_s\": %.9g, "
      "\"attributed_fraction\": %.9g},\n",
      p.buckets.compute_s, p.buckets.shuffle_s, p.buckets.collect_s,
      p.buckets.broadcast_s, p.buckets.recovery_s, p.buckets.stall_s,
      p.buckets.spill_s, p.buckets.readback_s, p.attributed_fraction());
  out << gs::strfmt(
      "  \"phases\": {\"a_s\": %.9g, \"bc_s\": %.9g, \"d_s\": %.9g, "
      "\"prep_s\": %.9g, \"other_s\": %.9g},\n",
      p.phases.a_s, p.phases.bc_s, p.phases.d_s, p.phases.prep_s,
      p.phases.other_s);
  out << "  \"iterations\": [";
  for (std::size_t i = 0; i < p.iterations.size(); ++i) {
    const auto& it = p.iterations[i];
    out << (i == 0 ? "\n" : ",\n");
    out << gs::strfmt(
        "    {\"k\": %lld, \"virtual_s\": %.9g, \"compute_s\": %.9g, "
        "\"shuffle_s\": %.9g, \"collect_s\": %.9g, \"broadcast_s\": %.9g, "
        "\"recovery_s\": %.9g, \"stall_s\": %.9g, \"spill_s\": %.9g, "
        "\"readback_s\": %.9g}",
        static_cast<long long>(it.k), it.virtual_seconds, it.buckets.compute_s,
        it.buckets.shuffle_s, it.buckets.collect_s, it.buckets.broadcast_s,
        it.buckets.recovery_s, it.buckets.stall_s, it.buckets.spill_s,
        it.buckets.readback_s);
  }
  out << (p.iterations.empty() ? "],\n" : "\n  ],\n");
  const auto& r = p.recovery;
  out << gs::strfmt(
      "  \"recovery\": {\"task_failures\": %d, \"task_retries\": %d, "
      "\"executor_kills\": %d, \"tasks_rescheduled\": %d, "
      "\"partitions_dropped\": %d, \"partitions_recomputed\": %d, "
      "\"fetch_failures\": %d, \"stage_resubmissions\": %d, "
      "\"checkpoint_blocks\": %d, \"checkpoint_bytes\": %zu, "
      "\"corrupted_blocks\": %d, \"evictions\": %d, "
      "\"stragglers_injected\": %d, \"speculative_launches\": %d, "
      "\"speculative_wins\": %d, \"spilled_blocks\": %d, "
      "\"spilled_bytes\": %zu, \"spill_readbacks\": %d, "
      "\"spill_readback_bytes\": %zu, \"corrupt_spills\": %d, "
      "\"spill_write_failures\": %d},\n",
      r.task_failures, r.task_retries, r.executor_kills, r.tasks_rescheduled,
      r.partitions_dropped, r.partitions_recomputed, r.fetch_failures,
      r.stage_resubmissions, r.checkpoint_blocks, r.checkpoint_bytes,
      r.corrupted_blocks, r.evictions, r.stragglers_injected,
      r.speculative_launches, r.speculative_wins, r.spilled_blocks,
      r.spilled_bytes, r.spill_readbacks, r.spill_readback_bytes,
      r.corrupt_spills, r.spill_write_failures);
  out << gs::strfmt("  \"spans\": {\"recorded\": %zu, \"dropped\": %zu}\n",
                    p.spans_recorded, p.spans_dropped);
  out << "}\n";
}

void write_profile_json(const JobProfile& profile, const std::string& path) {
  auto f = open_or_throw(path);
  write_profile_json(profile, f);
}

void write_profile_csv(const JobProfile& p, std::ostream& out) {
  out << kProfileCsvHeader << "\n";
  out << gs::strfmt(
      "job,,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%zu,%zu,%zu,"
      "%d,%d\n",
      p.wall_seconds, p.virtual_seconds, p.buckets.compute_s,
      p.buckets.shuffle_s, p.buckets.collect_s, p.buckets.broadcast_s,
      p.buckets.recovery_s, p.buckets.stall_s, p.buckets.spill_s,
      p.buckets.readback_s, p.shuffle_bytes, p.collect_bytes,
      p.broadcast_bytes, p.stages, p.tasks);
  for (const auto& it : p.iterations) {
    out << gs::strfmt(
        "iteration,%lld,,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,,,,,\n",
        static_cast<long long>(it.k), it.virtual_seconds, it.buckets.compute_s,
        it.buckets.shuffle_s, it.buckets.collect_s, it.buckets.broadcast_s,
        it.buckets.recovery_s, it.buckets.stall_s, it.buckets.spill_s,
        it.buckets.readback_s);
  }
}

void write_profile_csv(const JobProfile& profile, const std::string& path) {
  auto f = open_or_throw(path);
  write_profile_csv(profile, f);
}

void write_chrome_trace(const sparklet::VirtualTimeline& timeline,
                        const Tracer* tracer, const std::string& path) {
  auto f = open_or_throw(path);
  f << "[\n";
  bool first = true;
  auto emit_raw = [&](const std::string& line) {
    if (!first) f << ",\n";
    first = false;
    f << line;
  };
  // Process names so the three event streams read sensibly in the viewer.
  emit_raw(R"json({"ph":"M","name":"process_name","pid":-1,"args":{"name":"driver (virtual time)"}})json");
  emit_raw(R"json({"ph":"M","name":"process_name","pid":-2,"args":{"name":"spans (virtual time)"}})json");
  emit_raw(R"json({"ph":"M","name":"process_name","pid":-3,"args":{"name":"spans (wall time)"}})json");
  timeline.append_chrome_events(f, first);
  if (tracer != nullptr) {
    for (const Span& s : tracer->spans()) {
      std::string name = json_escape(s.name);
      if (s.index >= 0) {
        name += gs::strfmt(" #%lld", static_cast<long long>(s.index));
      }
      if (s.has_virtual()) {
        // One row per span level keeps the job/iteration/phase/stage nesting
        // visually stacked even though chrome-trace slices don't nest by id.
        emit_raw(gs::strfmt(
            R"({"name":"%s","cat":"%s","ph":"X","pid":-2,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"span":%llu,"parent":%llu}})",
            name.c_str(), span_level_name(s.level),
            static_cast<int>(s.level), s.virt_start_s * 1e6,
            (s.virt_end_s - s.virt_start_s) * 1e6,
            static_cast<unsigned long long>(s.id),
            static_cast<unsigned long long>(s.parent)));
      } else {
        emit_raw(gs::strfmt(
            R"({"name":"%s","cat":"%s","ph":"X","pid":-3,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"span":%llu,"parent":%llu}})",
            name.c_str(), span_level_name(s.level), s.thread,
            s.wall_start_s * 1e6, (s.wall_end_s - s.wall_start_s) * 1e6,
            static_cast<unsigned long long>(s.id),
            static_cast<unsigned long long>(s.parent)));
      }
    }
  }
  f << "\n]\n";
}

}  // namespace obs
