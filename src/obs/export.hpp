#pragma once
// Profile / trace exporters with stable schemas.
//
// JSON: one object, schema tag "gepspark.profile/v3" (v2 + the storage-tier
// "spill"/"readback" buckets and spill recovery counters). Key set and
// nesting are fixed; additions bump the schema version. CSV: fixed 17-column
// header (see kProfileCsvHeader), one "job" row plus one "iteration" row per
// traced iteration. The verify.sh smoke check and the golden-schema tests
// parse these — change them only with a version bump.
//
// Chrome trace: the VirtualTimeline's executor/slot slices plus, when a
// tracer is supplied, its span hierarchy — driver spans (virtual time) on
// pid -2 with one row per span level, wall-clock task/kernel spans on
// pid -3 keyed by thread.

#include <iosfwd>
#include <string>

#include "obs/job_profile.hpp"
#include "obs/span.hpp"
#include "sparklet/virtual_timeline.hpp"

namespace obs {

inline constexpr const char* kProfileJsonSchema = "gepspark.profile/v3";
inline constexpr const char* kProfileCsvHeader =
    "row,k,wall_s,virtual_s,compute_s,shuffle_s,collect_s,broadcast_s,"
    "recovery_s,stall_s,spill_s,readback_s,shuffle_bytes,collect_bytes,"
    "broadcast_bytes,stages,tasks";

void write_profile_json(const JobProfile& profile, std::ostream& out);
void write_profile_json(const JobProfile& profile, const std::string& path);

void write_profile_csv(const JobProfile& profile, std::ostream& out);
void write_profile_csv(const JobProfile& profile, const std::string& path);

/// Combined Chrome trace (chrome://tracing, ui.perfetto.dev). `tracer` may
/// be null or disabled — the output then matches
/// VirtualTimeline::write_chrome_trace plus process-name metadata.
void write_chrome_trace(const sparklet::VirtualTimeline& timeline,
                        const Tracer* tracer, const std::string& path);

}  // namespace obs
