#!/usr/bin/env bash
# verify.sh — the full pre-merge gate: configure + build + test the Release
# tree, run the schedule-soundness / race-detection analysis stage, then
# repeat the suite under AddressSanitizer/UBSanitizer and ThreadSanitizer.
# The chaos and pipeline-differential suites run in every tree, so all
# recovery paths and both schedulers are exercised with memory AND thread
# checking on.
#
#   scripts/verify.sh             # all three builds + analysis stage
#   scripts/verify.sh --fast      # Release build + analysis stage only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

# Spill files from the out-of-core / disk-chaos stages land under this
# scratch TMPDIR so a failed (or crashed) run never leaves stray spill
# directories behind.
SPILL_SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SPILL_SCRATCH}"' EXIT

run_tree() {
  local dir="$1"
  shift
  local timeout=300
  if [[ "${1:-}" == --timeout=* ]]; then
    timeout="${1#--timeout=}"
    shift
  fi
  echo "== configure ${dir} ($*) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  echo "== build ${dir} =="
  cmake --build "${dir}" -j "${JOBS}"
  echo "== test ${dir} =="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" --timeout "${timeout}")
  # The dataflow-vs-barrier differential suite is the bit-identity acceptance
  # gate for the scheduler — run it by name so a filtered/cached ctest setup
  # can never silently skip it.
  echo "== differential suite ${dir} =="
  (cd "${dir}" && ctest --output-on-failure --timeout "${timeout}" \
    -R 'PipelineDifferential|DataflowDag|DataflowStress|Lookahead')
  # Fused-D gate: the batched backend must stay bit-identical across the
  # kernel, scheduler, and chaos matrices. TSan pays 10-20x per test, so that
  # tree runs one real fused solve instead of the whole differential sweep.
  if [[ "${dir}" == *tsan* ]]; then
    echo "== fused-D solve (TSan) ${dir} =="
    "./${dir}/examples/gepspark_cli" --benchmark fw --n 256 --block 64 \
      --strategy im --schedule dataflow --fused-d --kernel iter >/dev/null
  else
    echo "== fused-D differential suite ${dir} =="
    (cd "${dir}" && ctest --output-on-failure --timeout "${timeout}" \
      -R 'FusedD|FusedDifferential|ScheduleCheckFused')
  fi
  # Nested-dataflow gate: the GAP / accordion / Viterbi wavefronts must stay
  # bit-identical to their serial references across both barrier drivers and
  # the dataflow engine. Under TSan the randomized suite is too slow, so that
  # tree runs one real verified dataflow solve per Spec instead.
  if [[ "${dir}" == *tsan* ]]; then
    echo "== nested solves (TSan) ${dir} =="
    for bench in gap accordion viterbi; do
      "./${dir}/examples/gepspark_cli" --benchmark "${bench}" --n 96 \
        --block 24 --strategy im --schedule dataflow --lookahead 1 >/dev/null
    done
  else
    echo "== nested suite ${dir} =="
    (cd "${dir}" && ctest --output-on-failure --timeout "${timeout}" -L nested)
  fi
}

run_tree build

# Lint stage: a hard gate whenever clang-tidy is installed (lint.sh promotes
# every finding to an error); on toolchains without clang-tidy it reports and
# passes so the pipeline stays runnable.
echo "== lint =="
scripts/lint.sh

# Profile-export smoke: a real FW solve per strategy and scheduler must
# produce a JSON profile that parses, carries the versioned schema, moves
# bytes, and attributes >=95% of virtual time to the six buckets.
profile_smoke() {
  local strategy="$1"
  local schedule="$2"
  local out="build/profile_smoke_${strategy}_${schedule}.json"
  echo "== profile-export smoke (${strategy}, ${schedule}) =="
  ./build/examples/gepspark_cli --benchmark fw --n 512 --block 128 \
    --strategy "${strategy}" --schedule "${schedule}" --kernel iter \
    --no-verify --profile-json "${out}" >/dev/null
  python3 - "${out}" "${strategy}" <<'PY'
import json, sys
p = json.load(open(sys.argv[1]))
strategy = sys.argv[2]
assert p["schema"] == "gepspark.profile/v3", p["schema"]
if strategy == "im":
    assert p["bytes"]["shuffle"] > 0, p["bytes"]
else:
    assert p["bytes"]["collect"] > 0 and p["bytes"]["broadcast"] > 0, p["bytes"]
assert p["breakdown"]["attributed_fraction"] >= 0.95, p["breakdown"]
assert p["job"]["stages"] > 0 and p["job"]["tasks"] > 0
print(f"profile smoke ({strategy}): ok — "
      f"{p['job']['stages']} stages, attributed "
      f"{p['breakdown']['attributed_fraction']:.3f}")
PY
}
profile_smoke im barrier
profile_smoke cb barrier
profile_smoke im dataflow
profile_smoke cb dataflow

# Analysis stage: the static schedule checker must hold on every shipped
# schedule shape (benchmark × strategy × lookahead), and the happens-before
# race detector must come back clean on real dataflow runs — including a
# chaos run that exercises the recovery paths' driver-era accesses.
echo "== analysis: schedule soundness sweep =="
for bench in fw ge tc gap accordion viterbi; do
  for strategy in im cb; do
    for lookahead in 0 1 2 3; do
      ./build/examples/gepspark_cli --benchmark "${bench}" --n 128 --block 32 \
        --strategy "${strategy}" --schedule dataflow \
        --lookahead "${lookahead}" --kernel iter --no-verify \
        --validate-schedule --audit-recovery >/dev/null
    done
  done
done
echo "analysis: 48 schedules sound + recovery-closure audited (fw/ge/tc/gap/accordion/viterbi x im/cb x lookahead 0-3)"

# Batched variants of the same sweep: fused D emits one task per
# (executor, k) whose footprint the checker derives as the union of the
# batch members.
echo "== analysis: fused batched schedule soundness =="
for bench in fw ge; do
  for strategy in im cb; do
    ./build/examples/gepspark_cli --benchmark "${bench}" --n 128 --block 32 \
      --strategy "${strategy}" --schedule dataflow --lookahead 1 \
      --fused-d --kernel iter --no-verify --validate-schedule >/dev/null
  done
done
echo "analysis: 4 batched schedules sound (fw/ge x im/cb, fused D)"

echo "== analysis: race detection on dataflow runs =="
./build/examples/gepspark_cli --benchmark fw --n 256 --block 64 \
  --strategy im --schedule dataflow --lookahead 3 --kernel iter \
  --race-check >/dev/null
./build/examples/gepspark_cli --benchmark ge --n 256 --block 64 \
  --strategy cb --schedule dataflow --lookahead 2 --kernel iter \
  --checkpoint-interval 2 --race-check \
  --chaos tasks=0.05,killp=0.3,kills=1,fetch=0.2,seed=7 --no-verify >/dev/null
echo "analysis: race detector clean (incl. chaos recovery paths)"

# Model-check stage: the ctest label runs the DPOR explorer's unit suite
# (including the seeded-bug regressions); the CLI runs then exhaustively
# explore a small FW plan and a small GAP plan for real, asserting every
# interleaving is bit-identical with clean verdicts.
echo "== model check: interleaving exploration =="
(cd build && ctest --output-on-failure -j "${JOBS}" --timeout 300 -L modelcheck)
./build/examples/gepspark_cli --benchmark fw --n 96 --block 32 \
  --strategy im --schedule dataflow --lookahead 1 --kernel iter \
  --no-verify --model-check=64 | grep 'model check:'
./build/examples/gepspark_cli --benchmark gap --n 64 --block 32 \
  --strategy im --schedule dataflow --lookahead 1 \
  --no-verify --model-check=64 | grep 'model check:'
echo "model check: FW + GAP interleavings bit-identical and clean"

# Storage-level stage: a hard --memory-cap forces the DP tiles down the
# storage ladder (serialize in place, then spill to real per-node files); the
# solve must still verify against the reference and actually hit the spill
# and readback paths. The disk-fault chaos runs then corrupt / truncate spill
# files, refuse writes (ENOSPC), and slow spill devices while killing an
# executor — recovery must stay correct under both schedulers.
storage_stage() {
  local dir="$1"
  echo "== out-of-core solve (${dir}) =="
  local out="${dir}/profile_outofcore.json"
  TMPDIR="${SPILL_SCRATCH}" "./${dir}/examples/gepspark_cli" \
    --benchmark fw --n 512 --block 128 --strategy im --kernel iter \
    --storage-level memory_and_disk --memory-cap 256k \
    --profile-json "${out}" >/dev/null
  python3 - "${out}" <<'PY'
import json, sys
p = json.load(open(sys.argv[1]))
r = p["recovery"]
assert r["spilled_blocks"] > 0, r
assert r["spill_readbacks"] > 0, r
print(f"out-of-core: ok — {r['spilled_blocks']} blocks spilled, "
      f"{r['spill_readbacks']} readbacks")
PY
  echo "== disk-fault chaos (${dir}) =="
  # Dataflow runs with checkpoint-interval 0 so carried tiles live in the
  # executor store (a checkpoint every iteration would pin them in shared
  # storage and never exercise the spill tier).
  for schedule_ckpt in barrier:1 dataflow:0; do
    TMPDIR="${SPILL_SCRATCH}" "./${dir}/examples/gepspark_cli" \
      --benchmark ge --n 256 --block 64 --strategy cb \
      --schedule "${schedule_ckpt%:*}" \
      --checkpoint-interval "${schedule_ckpt#*:}" --kernel iter \
      --storage-level memory_and_disk --memory-cap 64k \
      --chaos "killp=0.3,kills=1,spillcorrupt=1.0,torn=1.0,enospc=0.5,slowdisk=0.5,seed=11" \
      >/dev/null
  done
  echo "storage (${dir}): out-of-core + disk-fault chaos ok"
}
storage_stage build

# Serving stage: the DP-as-a-service loop end to end — a JobServer hosting
# 4 concurrent tenants, 1000 point queries (dist + reconstructed paths)
# answered from the resident tables, a mid-flight cancellation, and a clean
# drain/shutdown. The predecessor-tracked one-shot solve then exercises the
# same pair-valued FW spec through the ordinary driver path with reference
# validation on. Repeated under ASan below so the whole server lifecycle is
# leak-checked.
serve_stage() {
  local dir="$1"
  echo "== serving smoke (${dir}) =="
  "./${dir}/examples/gepspark_cli" --serve --n 192 --tenants 4     --queries 1000 >/dev/null
  "./${dir}/examples/gepspark_cli" --benchmark fw --n 128 --block 32     --track-predecessors --kernel iter >/dev/null
  echo "serve (${dir}): 4 tenants + 1000 queries + cancel + shutdown ok"
}
serve_stage build

if [[ "${FAST}" == "0" ]]; then
  # UBSan-only tree: without ASan's shadow memory it is cheap enough to run
  # full solves — one GEP and one nested dataflow smoke catch undefined
  # behavior (overflow, misaligned access, bad shifts) on the hot paths.
  echo "== configure build-ubsan (UBSan) =="
  cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=Release -DGS_SANITIZE=undefined
  echo "== build build-ubsan =="
  cmake --build build-ubsan -j "${JOBS}" --target gepspark_cli
  echo "== UBSan solver smokes =="
  ./build-ubsan/examples/gepspark_cli --benchmark fw --n 256 --block 64 \
    --strategy im --schedule dataflow --lookahead 1 --kernel iter >/dev/null
  ./build-ubsan/examples/gepspark_cli --benchmark gap --n 96 --block 24 \
    --strategy im --schedule dataflow --lookahead 1 >/dev/null
  echo "ubsan: fw + gap solves clean"

  run_tree build-asan -DGS_SANITIZE=address
  storage_stage build-asan
  serve_stage build-asan
  # TSan slows tests 10-20x; the tree also applies tsan.supp (libgomp is
  # un-annotated) through the GS_TEST_ENVIRONMENT property.
  run_tree build-tsan --timeout=900 -DGS_SANITIZE=thread
  # One model-check exploration under TSan: the serial replay path plus the
  # surrounding pool machinery stay data-race-free.
  echo "== model check (TSan) =="
  ./build-tsan/examples/gepspark_cli --benchmark fw --n 96 --block 32 \
    --strategy im --schedule dataflow --lookahead 1 --kernel iter \
    --no-verify --model-check=8 >/dev/null
  echo "model check (TSan): clean"
fi

echo "verify: all suites passed"
