#!/usr/bin/env bash
# verify.sh — the full pre-merge gate: configure + build + test the Release
# tree, then repeat under AddressSanitizer/UBSanitizer. The chaos suite runs
# in both, so every recovery path is exercised with memory checking on.
#
#   scripts/verify.sh             # both builds
#   scripts/verify.sh --fast      # Release build only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_tree() {
  local dir="$1"
  shift
  echo "== configure ${dir} ($*) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  echo "== build ${dir} =="
  cmake --build "${dir}" -j "${JOBS}"
  echo "== test ${dir} =="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_tree build

if [[ "${FAST}" == "0" ]]; then
  run_tree build-asan -DGS_SANITIZE=ON
fi

echo "verify: all suites passed"
