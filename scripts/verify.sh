#!/usr/bin/env bash
# verify.sh — the full pre-merge gate: configure + build + test the Release
# tree, then repeat under AddressSanitizer/UBSanitizer. The chaos and
# pipeline-differential suites run in both, so every recovery path and both
# schedulers are exercised with memory checking on.
#
#   scripts/verify.sh             # both builds
#   scripts/verify.sh --fast      # Release build only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_tree() {
  local dir="$1"
  shift
  echo "== configure ${dir} ($*) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  echo "== build ${dir} =="
  cmake --build "${dir}" -j "${JOBS}"
  echo "== test ${dir} =="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" --timeout 300)
  # The dataflow-vs-barrier differential suite is the bit-identity acceptance
  # gate for the scheduler — run it by name so a filtered/cached ctest setup
  # can never silently skip it.
  echo "== differential suite ${dir} =="
  (cd "${dir}" && ctest --output-on-failure --timeout 300 \
    -R 'PipelineDifferential|DataflowDag|DataflowStress|Lookahead')
}

run_tree build

# Profile-export smoke: a real FW solve per strategy and scheduler must
# produce a JSON profile that parses, carries the versioned schema, moves
# bytes, and attributes >=95% of virtual time to the six buckets.
profile_smoke() {
  local strategy="$1"
  local schedule="$2"
  local out="build/profile_smoke_${strategy}_${schedule}.json"
  echo "== profile-export smoke (${strategy}, ${schedule}) =="
  ./build/examples/gepspark_cli --benchmark fw --n 512 --block 128 \
    --strategy "${strategy}" --schedule "${schedule}" --kernel iter \
    --no-verify --profile-json "${out}" >/dev/null
  python3 - "${out}" "${strategy}" <<'PY'
import json, sys
p = json.load(open(sys.argv[1]))
strategy = sys.argv[2]
assert p["schema"] == "gepspark.profile/v2", p["schema"]
if strategy == "im":
    assert p["bytes"]["shuffle"] > 0, p["bytes"]
else:
    assert p["bytes"]["collect"] > 0 and p["bytes"]["broadcast"] > 0, p["bytes"]
assert p["breakdown"]["attributed_fraction"] >= 0.95, p["breakdown"]
assert p["job"]["stages"] > 0 and p["job"]["tasks"] > 0
print(f"profile smoke ({strategy}): ok — "
      f"{p['job']['stages']} stages, attributed "
      f"{p['breakdown']['attributed_fraction']:.3f}")
PY
}
profile_smoke im barrier
profile_smoke cb barrier
profile_smoke im dataflow
profile_smoke cb dataflow

if [[ "${FAST}" == "0" ]]; then
  run_tree build-asan -DGS_SANITIZE=ON
fi

echo "verify: all suites passed"
