#!/usr/bin/env bash
# lint.sh — clang-tidy over the compiled sources, using the CMake compile
# database (.clang-tidy at the repo root holds the check set).
#
#   scripts/lint.sh               # lint gs_core sources + tests + examples
#   scripts/lint.sh src/analysis  # lint only files under a path prefix
#
# The container may not ship clang-tidy (the toolchain is gcc); in that case
# this script reports and exits 0 so CI pipelines that chain it keep working.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not installed — skipping (checks are defined in .clang-tidy)"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
FILTER="${1:-}"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "== configure ${BUILD_DIR} (compile database) =="
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

# Every TU in the database except third-party-free bench harness noise;
# optional prefix filter narrows the sweep.
mapfile -t FILES < <(python3 - "${BUILD_DIR}" "${FILTER}" <<'PY'
import json, sys
db = json.load(open(f"{sys.argv[1]}/compile_commands.json"))
prefix = sys.argv[2]
seen = []
for entry in db:
    f = entry["file"]
    if "/bench/" in f:
        continue
    if prefix and prefix not in f:
        continue
    if f not in seen:
        seen.append(f)
print("\n".join(seen))
PY
)

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "lint: no files matched"
  exit 0
fi

# --warnings-as-errors promotes every finding to an error so this script is
# a hard gate when clang-tidy exists: any diagnostic fails the pipeline
# (set -e propagates the non-zero exit) instead of scrolling past.
echo "== clang-tidy (${#FILES[@]} files, -p ${BUILD_DIR}) =="
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "${BUILD_DIR}" -j "${JOBS}" -quiet \
    -warnings-as-errors='*' "${FILES[@]}"
else
  clang-tidy -p "${BUILD_DIR}" --quiet --warnings-as-errors='*' "${FILES[@]}"
fi
echo "lint: clean"
