file(REMOVE_RECURSE
  "CMakeFiles/test_paren.dir/test_paren.cpp.o"
  "CMakeFiles/test_paren.dir/test_paren.cpp.o.d"
  "test_paren"
  "test_paren.pdb"
  "test_paren[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paren.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
