# Empty dependencies file for test_paren.
# This may be replaced when dependencies are built.
