# Empty dependencies file for test_kernels_simd.
# This may be replaced when dependencies are built.
