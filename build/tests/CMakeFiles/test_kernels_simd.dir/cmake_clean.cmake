file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_simd.dir/test_kernels_simd.cpp.o"
  "CMakeFiles/test_kernels_simd.dir/test_kernels_simd.cpp.o.d"
  "test_kernels_simd"
  "test_kernels_simd.pdb"
  "test_kernels_simd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
