# Empty compiler generated dependencies file for test_sparklet_runtime.
# This may be replaced when dependencies are built.
