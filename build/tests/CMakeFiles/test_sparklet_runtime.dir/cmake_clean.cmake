file(REMOVE_RECURSE
  "CMakeFiles/test_sparklet_runtime.dir/test_sparklet_runtime.cpp.o"
  "CMakeFiles/test_sparklet_runtime.dir/test_sparklet_runtime.cpp.o.d"
  "test_sparklet_runtime"
  "test_sparklet_runtime.pdb"
  "test_sparklet_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparklet_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
