file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_tiled.dir/test_kernels_tiled.cpp.o"
  "CMakeFiles/test_kernels_tiled.dir/test_kernels_tiled.cpp.o.d"
  "test_kernels_tiled"
  "test_kernels_tiled.pdb"
  "test_kernels_tiled[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_tiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
