# Empty dependencies file for test_kernels_tiled.
# This may be replaced when dependencies are built.
