file(REMOVE_RECURSE
  "CMakeFiles/test_driver_im.dir/test_driver_im.cpp.o"
  "CMakeFiles/test_driver_im.dir/test_driver_im.cpp.o.d"
  "test_driver_im"
  "test_driver_im.pdb"
  "test_driver_im[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver_im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
