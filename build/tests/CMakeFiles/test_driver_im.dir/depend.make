# Empty dependencies file for test_driver_im.
# This may be replaced when dependencies are built.
