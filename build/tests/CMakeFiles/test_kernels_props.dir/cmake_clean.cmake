file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_props.dir/test_kernels_props.cpp.o"
  "CMakeFiles/test_kernels_props.dir/test_kernels_props.cpp.o.d"
  "test_kernels_props"
  "test_kernels_props.pdb"
  "test_kernels_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
