# Empty dependencies file for test_kernels_props.
# This may be replaced when dependencies are built.
