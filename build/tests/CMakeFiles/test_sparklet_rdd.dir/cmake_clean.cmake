file(REMOVE_RECURSE
  "CMakeFiles/test_sparklet_rdd.dir/test_sparklet_rdd.cpp.o"
  "CMakeFiles/test_sparklet_rdd.dir/test_sparklet_rdd.cpp.o.d"
  "test_sparklet_rdd"
  "test_sparklet_rdd.pdb"
  "test_sparklet_rdd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparklet_rdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
