# Empty dependencies file for test_sparklet_rdd.
# This may be replaced when dependencies are built.
