file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_recursive.dir/test_kernels_recursive.cpp.o"
  "CMakeFiles/test_kernels_recursive.dir/test_kernels_recursive.cpp.o.d"
  "test_kernels_recursive"
  "test_kernels_recursive.pdb"
  "test_kernels_recursive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
