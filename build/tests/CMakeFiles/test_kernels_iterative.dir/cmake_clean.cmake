file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_iterative.dir/test_kernels_iterative.cpp.o"
  "CMakeFiles/test_kernels_iterative.dir/test_kernels_iterative.cpp.o.d"
  "test_kernels_iterative"
  "test_kernels_iterative.pdb"
  "test_kernels_iterative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
