# Empty dependencies file for test_kernels_iterative.
# This may be replaced when dependencies are built.
