# Empty compiler generated dependencies file for test_driver_cb.
# This may be replaced when dependencies are built.
