file(REMOVE_RECURSE
  "CMakeFiles/test_driver_cb.dir/test_driver_cb.cpp.o"
  "CMakeFiles/test_driver_cb.dir/test_driver_cb.cpp.o.d"
  "test_driver_cb"
  "test_driver_cb.pdb"
  "test_driver_cb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver_cb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
