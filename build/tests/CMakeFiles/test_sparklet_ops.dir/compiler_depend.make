# Empty compiler generated dependencies file for test_sparklet_ops.
# This may be replaced when dependencies are built.
