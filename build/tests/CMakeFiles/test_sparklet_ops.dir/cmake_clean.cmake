file(REMOVE_RECURSE
  "CMakeFiles/test_sparklet_ops.dir/test_sparklet_ops.cpp.o"
  "CMakeFiles/test_sparklet_ops.dir/test_sparklet_ops.cpp.o.d"
  "test_sparklet_ops"
  "test_sparklet_ops.pdb"
  "test_sparklet_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparklet_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
