# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_semiring[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_iterative[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_simd[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_recursive[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_tiled[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_props[1]_include.cmake")
include("/root/repo/build/tests/test_sparklet_rdd[1]_include.cmake")
include("/root/repo/build/tests/test_sparklet_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sparklet_ops[1]_include.cmake")
include("/root/repo/build/tests/test_driver_im[1]_include.cmake")
include("/root/repo/build/tests/test_driver_cb[1]_include.cmake")
include("/root/repo/build/tests/test_solver_props[1]_include.cmake")
include("/root/repo/build/tests/test_simtime[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_tuning[1]_include.cmake")
include("/root/repo/build/tests/test_fault_tolerance[1]_include.cmake")
include("/root/repo/build/tests/test_paren[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_align[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
