# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;8;gs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_road_network_apsp "/root/repo/build/examples/road_network_apsp")
set_tests_properties(example_road_network_apsp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;gs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_linear_solver "/root/repo/build/examples/linear_solver")
set_tests_properties(example_linear_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;gs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reachability "/root/repo/build/examples/reachability")
set_tests_properties(example_reachability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;gs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tuning_explorer "/root/repo/build/examples/tuning_explorer")
set_tests_properties(example_tuning_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;gs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matrix_chain "/root/repo/build/examples/matrix_chain")
set_tests_properties(example_matrix_chain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;gs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sequence_align "/root/repo/build/examples/sequence_align")
set_tests_properties(example_sequence_align PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;14;gs_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gepspark_cli "/root/repo/build/examples/gepspark_cli")
set_tests_properties(example_gepspark_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;15;gs_add_example;/root/repo/examples/CMakeLists.txt;0;")
