file(REMOVE_RECURSE
  "CMakeFiles/sequence_align.dir/sequence_align.cpp.o"
  "CMakeFiles/sequence_align.dir/sequence_align.cpp.o.d"
  "sequence_align"
  "sequence_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
