file(REMOVE_RECURSE
  "CMakeFiles/gepspark_cli.dir/gepspark_cli.cpp.o"
  "CMakeFiles/gepspark_cli.dir/gepspark_cli.cpp.o.d"
  "gepspark_cli"
  "gepspark_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepspark_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
