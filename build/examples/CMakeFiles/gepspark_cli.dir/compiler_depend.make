# Empty compiler generated dependencies file for gepspark_cli.
# This may be replaced when dependencies are built.
