# Empty dependencies file for road_network_apsp.
# This may be replaced when dependencies are built.
