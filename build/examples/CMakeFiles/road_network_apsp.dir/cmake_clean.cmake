file(REMOVE_RECURSE
  "CMakeFiles/road_network_apsp.dir/road_network_apsp.cpp.o"
  "CMakeFiles/road_network_apsp.dir/road_network_apsp.cpp.o.d"
  "road_network_apsp"
  "road_network_apsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network_apsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
