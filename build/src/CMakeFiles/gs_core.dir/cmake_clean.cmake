file(REMOVE_RECURSE
  "CMakeFiles/gs_core.dir/simtime/gep_job_sim.cpp.o"
  "CMakeFiles/gs_core.dir/simtime/gep_job_sim.cpp.o.d"
  "CMakeFiles/gs_core.dir/simtime/machine_model.cpp.o"
  "CMakeFiles/gs_core.dir/simtime/machine_model.cpp.o.d"
  "CMakeFiles/gs_core.dir/sparklet/block_store.cpp.o"
  "CMakeFiles/gs_core.dir/sparklet/block_store.cpp.o.d"
  "CMakeFiles/gs_core.dir/sparklet/cluster.cpp.o"
  "CMakeFiles/gs_core.dir/sparklet/cluster.cpp.o.d"
  "CMakeFiles/gs_core.dir/sparklet/context.cpp.o"
  "CMakeFiles/gs_core.dir/sparklet/context.cpp.o.d"
  "CMakeFiles/gs_core.dir/sparklet/metrics.cpp.o"
  "CMakeFiles/gs_core.dir/sparklet/metrics.cpp.o.d"
  "CMakeFiles/gs_core.dir/sparklet/virtual_timeline.cpp.o"
  "CMakeFiles/gs_core.dir/sparklet/virtual_timeline.cpp.o.d"
  "libgs_core.a"
  "libgs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
