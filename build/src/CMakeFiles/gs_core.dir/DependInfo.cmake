
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simtime/gep_job_sim.cpp" "src/CMakeFiles/gs_core.dir/simtime/gep_job_sim.cpp.o" "gcc" "src/CMakeFiles/gs_core.dir/simtime/gep_job_sim.cpp.o.d"
  "/root/repo/src/simtime/machine_model.cpp" "src/CMakeFiles/gs_core.dir/simtime/machine_model.cpp.o" "gcc" "src/CMakeFiles/gs_core.dir/simtime/machine_model.cpp.o.d"
  "/root/repo/src/sparklet/block_store.cpp" "src/CMakeFiles/gs_core.dir/sparklet/block_store.cpp.o" "gcc" "src/CMakeFiles/gs_core.dir/sparklet/block_store.cpp.o.d"
  "/root/repo/src/sparklet/cluster.cpp" "src/CMakeFiles/gs_core.dir/sparklet/cluster.cpp.o" "gcc" "src/CMakeFiles/gs_core.dir/sparklet/cluster.cpp.o.d"
  "/root/repo/src/sparklet/context.cpp" "src/CMakeFiles/gs_core.dir/sparklet/context.cpp.o" "gcc" "src/CMakeFiles/gs_core.dir/sparklet/context.cpp.o.d"
  "/root/repo/src/sparklet/metrics.cpp" "src/CMakeFiles/gs_core.dir/sparklet/metrics.cpp.o" "gcc" "src/CMakeFiles/gs_core.dir/sparklet/metrics.cpp.o.d"
  "/root/repo/src/sparklet/virtual_timeline.cpp" "src/CMakeFiles/gs_core.dir/sparklet/virtual_timeline.cpp.o" "gcc" "src/CMakeFiles/gs_core.dir/sparklet/virtual_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
