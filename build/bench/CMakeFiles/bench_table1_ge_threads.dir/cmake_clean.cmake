file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ge_threads.dir/bench_table1_ge_threads.cpp.o"
  "CMakeFiles/bench_table1_ge_threads.dir/bench_table1_ge_threads.cpp.o.d"
  "bench_table1_ge_threads"
  "bench_table1_ge_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ge_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
