# Empty dependencies file for bench_align_extension.
# This may be replaced when dependencies are built.
