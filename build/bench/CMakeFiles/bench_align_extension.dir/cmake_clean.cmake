file(REMOVE_RECURSE
  "CMakeFiles/bench_align_extension.dir/bench_align_extension.cpp.o"
  "CMakeFiles/bench_align_extension.dir/bench_align_extension.cpp.o.d"
  "bench_align_extension"
  "bench_align_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_align_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
