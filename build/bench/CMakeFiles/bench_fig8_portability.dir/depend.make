# Empty dependencies file for bench_fig8_portability.
# This may be replaced when dependencies are built.
