file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_portability.dir/bench_fig8_portability.cpp.o"
  "CMakeFiles/bench_fig8_portability.dir/bench_fig8_portability.cpp.o.d"
  "bench_fig8_portability"
  "bench_fig8_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
