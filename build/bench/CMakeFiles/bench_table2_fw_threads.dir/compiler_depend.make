# Empty compiler generated dependencies file for bench_table2_fw_threads.
# This may be replaced when dependencies are built.
