file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fw_threads.dir/bench_table2_fw_threads.cpp.o"
  "CMakeFiles/bench_table2_fw_threads.dir/bench_table2_fw_threads.cpp.o.d"
  "bench_table2_fw_threads"
  "bench_table2_fw_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fw_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
