file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dependencies.dir/bench_fig7_dependencies.cpp.o"
  "CMakeFiles/bench_fig7_dependencies.dir/bench_fig7_dependencies.cpp.o.d"
  "bench_fig7_dependencies"
  "bench_fig7_dependencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dependencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
