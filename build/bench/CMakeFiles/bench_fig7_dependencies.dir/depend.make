# Empty dependencies file for bench_fig7_dependencies.
# This may be replaced when dependencies are built.
