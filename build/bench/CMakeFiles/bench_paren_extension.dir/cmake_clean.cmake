file(REMOVE_RECURSE
  "CMakeFiles/bench_paren_extension.dir/bench_paren_extension.cpp.o"
  "CMakeFiles/bench_paren_extension.dir/bench_paren_extension.cpp.o.d"
  "bench_paren_extension"
  "bench_paren_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paren_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
