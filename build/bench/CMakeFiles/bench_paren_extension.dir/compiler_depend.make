# Empty compiler generated dependencies file for bench_paren_extension.
# This may be replaced when dependencies are built.
